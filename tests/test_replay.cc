/**
 * @file
 * Record/replay tests (ISSUE 6 tentpole): trace container round-trips
 * and truncation tolerance, ReplayDriver schedule enforcement and fault
 * semantics, and the end-to-end property — 64 seeds across all four
 * --on-race policies, with and without injection, whose replays must
 * reproduce byte-identical failure reports and metrics JSON.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "det/replay.h"
#include "obs/trace_schema.h"
#include "support/exit_codes.h"
#include "support/prng.h"
#include "support/trace_error.h"
#include "workloads/runner.h"

namespace clean
{
namespace
{

using wl::BackendKind;
using wl::RunResult;
using wl::RunSpec;
using wl::Scale;

std::string
tmpPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() /
            ("clean_replay_" + name))
        .string();
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

obs::Event
ev(obs::EventKind kind, std::uint64_t det, std::uint64_t seq, ThreadId tid,
   std::uint64_t arg0 = 0, std::uint64_t arg1 = 0)
{
    obs::Event e;
    e.det = det;
    e.seq = seq;
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.tid = tid;
    e.kind = kind;
    return e;
}

obs::TraceMeta
miniMeta()
{
    obs::TraceMeta meta;
    meta.workload = "fft";
    meta.threads = 2;
    meta.maxThreads = 4;
    meta.seed = 7;
    meta.backend = static_cast<std::uint32_t>(BackendKind::Clean);
    return meta;
}

obs::TraceFile
makeTrace(std::vector<obs::Event> events, bool complete)
{
    obs::TraceFile trace;
    trace.meta = miniMeta();
    trace.events = std::move(events);
    trace.complete = complete;
    return trace;
}

// ---------------------------------------------------------------------
// Trace container.
// ---------------------------------------------------------------------

TEST(TraceSchema, RecordEncodingRoundTripsEveryKind)
{
    for (std::size_t k = 0; k < obs::kEventKindCount; ++k) {
        const obs::Event in =
            ev(static_cast<obs::EventKind>(k), 0x0123456789abcdefULL,
               k + 1, static_cast<ThreadId>(k), ~std::uint64_t{0}, 42);
        unsigned char buf[obs::kTraceRecordBytes];
        obs::encodeTraceRecord(in, buf);
        const obs::Event out = obs::decodeTraceRecord(buf);
        EXPECT_EQ(out.det, in.det);
        EXPECT_EQ(out.seq, in.seq);
        EXPECT_EQ(out.arg0, in.arg0);
        EXPECT_EQ(out.arg1, in.arg1);
        EXPECT_EQ(out.tid, in.tid);
        EXPECT_EQ(out.kind, in.kind);
    }
}

TEST(TraceSchema, RateBitsAreExact)
{
    for (const double rate : {0.0, 1.0, 0.1, 1e-9, 0.0005}) {
        EXPECT_EQ(obs::rateFromBits(obs::rateToBits(rate)), rate);
    }
}

TEST(TraceSchema, SinkWritesCompleteReadableTrace)
{
    const std::string path = tmpPath("sink_complete.cleantrace");
    const obs::TraceMeta meta = miniMeta();
    {
        obs::RecordSink sink(path, meta);
        sink.onEvent(ev(obs::EventKind::TurnGrant, 1, 0, 0));
        sink.onEvent(ev(obs::EventKind::SyncAcquire, 2, 1, 0, 2, 1));
        sink.onEvent(ev(obs::EventKind::TurnGrant, 1, 0, 1));
        EXPECT_EQ(sink.recorded(), 3u);
        sink.finalize();
    }
    const obs::TraceFile trace = obs::readTraceFile(path);
    EXPECT_TRUE(trace.complete);
    EXPECT_EQ(trace.meta, meta);
    ASSERT_EQ(trace.events.size(), 3u);
    EXPECT_EQ(trace.events[1].kind, obs::EventKind::SyncAcquire);
    EXPECT_EQ(trace.events[1].arg0, 2u);
    std::filesystem::remove(path);
}

TEST(TraceSchema, SinkWithoutFinalizeLeavesTruncatedTrace)
{
    const std::string path = tmpPath("sink_crashed.cleantrace");
    {
        obs::RecordSink sink(path, miniMeta());
        sink.onEvent(ev(obs::EventKind::TurnGrant, 1, 0, 0));
        sink.onEvent(ev(obs::EventKind::TurnGrant, 2, 1, 0));
        // No finalize(): the destructor flushes records but must not
        // write the completeness footer — a crashed recorder's state.
    }
    const obs::TraceFile trace = obs::readTraceFile(path);
    EXPECT_FALSE(trace.complete);
    EXPECT_EQ(trace.events.size(), 2u);
    std::filesystem::remove(path);
}

TEST(TraceSchema, ReaderKeepsParseablePrefixOfCutBody)
{
    const std::string path = tmpPath("cut_body.cleantrace");
    {
        obs::RecordSink sink(path, miniMeta());
        for (std::uint64_t i = 0; i < 5; ++i)
            sink.onEvent(ev(obs::EventKind::TurnGrant, i + 1, i, 0));
        sink.finalize();
    }
    std::string bytes = readFileBytes(path);
    // Cut mid-way through the fourth record (drops records 4, 5 and the
    // footer).
    const std::size_t headerLen =
        bytes.size() - 5 * obs::kTraceRecordBytes - 16;
    bytes.resize(headerLen + 3 * obs::kTraceRecordBytes + 17);
    writeFileBytes(path, bytes);

    const obs::TraceFile trace = obs::readTraceFile(path);
    EXPECT_FALSE(trace.complete);
    ASSERT_EQ(trace.events.size(), 3u);
    EXPECT_EQ(trace.events[2].det, 3u);
    std::filesystem::remove(path);
}

TEST(TraceSchema, HeaderFaultsAreStructured)
{
    const auto faultOf = [](const std::string &path) {
        try {
            obs::readTraceFile(path);
        } catch (const TraceError &e) {
            return e.fault();
        }
        return TraceFault::Unsupported; // i.e. "did not throw"
    };

    EXPECT_EQ(faultOf(tmpPath("does_not_exist.cleantrace")),
              TraceFault::BadFile);

    const std::string magicPath = tmpPath("bad_magic.cleantrace");
    writeFileBytes(magicPath, "NOTATRACE 1\nworkload=fft\n%%\n");
    EXPECT_EQ(faultOf(magicPath), TraceFault::BadMagic);

    const std::string versionPath = tmpPath("bad_version.cleantrace");
    writeFileBytes(versionPath, "CLEANTRACE 99\nworkload=fft\n%%\n");
    EXPECT_EQ(faultOf(versionPath), TraceFault::BadVersion);

    const std::string metaPath = tmpPath("bad_meta.cleantrace");
    writeFileBytes(metaPath,
                   "CLEANTRACE " +
                       std::to_string(obs::kTraceSchemaVersion) +
                       "\nthreads=abc\n%%\n");
    EXPECT_EQ(faultOf(metaPath), TraceFault::BadMeta);

    std::filesystem::remove(magicPath);
    std::filesystem::remove(versionPath);
    std::filesystem::remove(metaPath);
}

TEST(TraceSchema, CorruptRecordKindTruncatesToPrefix)
{
    const std::string path = tmpPath("corrupt_kind.cleantrace");
    {
        obs::RecordSink sink(path, miniMeta());
        for (std::uint64_t i = 0; i < 4; ++i)
            sink.onEvent(ev(obs::EventKind::TurnGrant, i + 1, i, 0));
        sink.finalize();
    }
    std::string bytes = readFileBytes(path);
    // The kind byte sits at offset 36 of each 40-byte record; corrupt
    // record 3's.
    const std::size_t bodyStart =
        bytes.size() - 4 * obs::kTraceRecordBytes - 16;
    bytes[bodyStart + 2 * obs::kTraceRecordBytes + 36] =
        static_cast<char>(0xee);
    writeFileBytes(path, bytes);

    const obs::TraceFile trace = obs::readTraceFile(path);
    EXPECT_FALSE(trace.complete);
    EXPECT_EQ(trace.events.size(), 2u);
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------------
// ReplayDriver unit behavior.
// ---------------------------------------------------------------------

TEST(ReplayDriver, GrantsFollowTheRecordedSchedule)
{
    det::ReplayDriver driver(
        makeTrace({ev(obs::EventKind::TurnGrant, 1, 0, 0),
                   ev(obs::EventKind::TurnGrant, 1, 0, 1),
                   ev(obs::EventKind::TurnGrant, 2, 1, 0)},
                  /*complete=*/true),
        /*policyAborts=*/false);
    EXPECT_EQ(driver.scheduleSize(), 3u);

    // Thread 1 is not the schedule head and Kendo does not offer it a
    // turn: it just spins.
    EXPECT_EQ(driver.tryGrant(1, 1, false), det::GrantStatus::NotYet);
    // Head (det 1, tid 0) grants only with Kendo's agreement.
    EXPECT_EQ(driver.tryGrant(0, 1, false), det::GrantStatus::NotYet);
    EXPECT_EQ(driver.tryGrant(0, 1, true), det::GrantStatus::Granted);
    EXPECT_EQ(driver.tryGrant(1, 1, true), det::GrantStatus::Granted);
    EXPECT_EQ(driver.tryGrant(0, 2, true), det::GrantStatus::Granted);
    EXPECT_EQ(driver.scheduleCursor(), 3u);

    // Beyond the end of a complete, non-tolerant trace: divergence.
    EXPECT_THROW(driver.tryGrant(0, 3, true), TraceError);
    EXPECT_TRUE(driver.faulted());
    EXPECT_EQ(driver.faultKind(), TraceFault::Divergence);
}

TEST(ReplayDriver, KendoDisagreementIsDivergence)
{
    det::ReplayDriver driver(
        makeTrace({ev(obs::EventKind::TurnGrant, 1, 0, 0)},
                  /*complete=*/true),
        /*policyAborts=*/false);
    // Kendo offers thread 1 a turn but the trace predicts thread 0.
    try {
        driver.tryGrant(1, 1, true);
        FAIL() << "expected a Divergence fault";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.fault(), TraceFault::Divergence);
        EXPECT_TRUE(e.hasStep());
    }
    // The fault is latched: every other thread's next poll rethrows it.
    EXPECT_THROW(driver.tryGrant(0, 1, true), TraceError);
}

TEST(ReplayDriver, WrongDetStampIsDivergence)
{
    det::ReplayDriver driver(
        makeTrace({ev(obs::EventKind::TurnGrant, 5, 0, 0)},
                  /*complete=*/true),
        /*policyAborts=*/false);
    // Thread 0 arrives at det 4 where the trace recorded det 5; its
    // counter cannot change while it spins, so this is divergence even
    // without Kendo's agreement.
    EXPECT_THROW(driver.tryGrant(0, 4, false), TraceError);
    EXPECT_EQ(driver.faultKind(), TraceFault::Divergence);
}

TEST(ReplayDriver, ExhaustedTruncatedScheduleRaisesTruncated)
{
    det::ReplayDriver driver(makeTrace({}, /*complete=*/false),
                             /*policyAborts=*/false);
    EXPECT_EQ(driver.tryGrant(0, 1, false), det::GrantStatus::NotYet);
    try {
        driver.tryGrant(0, 1, true);
        FAIL() << "expected a Truncated fault";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.fault(), TraceFault::Truncated);
    }
}

TEST(ReplayDriver, TolerantModeFallsBackToKendoPastTheAbort)
{
    // A Throw-policy trace that recorded a race: its post-abort tail is
    // physically cut, so schedule exhaustion falls back to plain Kendo
    // grants instead of reporting divergence.
    det::ReplayDriver driver(
        makeTrace({ev(obs::EventKind::TurnGrant, 1, 0, 0),
                   ev(obs::EventKind::RaceDetected, 2, 1, 0, 1282, 1)},
                  /*complete=*/true),
        /*policyAborts=*/true);
    EXPECT_EQ(driver.tryGrant(0, 1, true), det::GrantStatus::Granted);
    EXPECT_EQ(driver.tryGrant(1, 3, true), det::GrantStatus::Granted);
    EXPECT_FALSE(driver.faulted());
}

TEST(ReplayDriver, LaneValidationCatchesPayloadMismatch)
{
    det::ReplayDriver driver(
        makeTrace({ev(obs::EventKind::SyncAcquire, 3, 0, 0, 3, 1)},
                  /*complete=*/true),
        /*policyAborts=*/false);
    // Same kind and det, different payload: divergence at lane step 0.
    try {
        driver.onEvent(ev(obs::EventKind::SyncAcquire, 3, 0, 0, 9, 1));
        FAIL() << "expected a Divergence fault";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.fault(), TraceFault::Divergence);
    }
    // Latched for everyone else.
    EXPECT_THROW(driver.tryGrant(1, 1, true), TraceError);
}

TEST(ReplayDriver, LaneOverrunDependsOnCompleteness)
{
    // Complete trace: an extra validated event is divergence.
    det::ReplayDriver strict(makeTrace({}, /*complete=*/true),
                             /*policyAborts=*/false);
    EXPECT_THROW(
        strict.onEvent(ev(obs::EventKind::SyncAcquire, 1, 0, 0)),
        TraceError);
    EXPECT_EQ(strict.faultKind(), TraceFault::Divergence);

    // Truncated trace: the overrun is the missing tail.
    det::ReplayDriver truncated(makeTrace({}, /*complete=*/false),
                                /*policyAborts=*/false);
    EXPECT_THROW(
        truncated.onEvent(ev(obs::EventKind::SyncAcquire, 1, 0, 0)),
        TraceError);
    EXPECT_EQ(truncated.faultKind(), TraceFault::Truncated);
}

TEST(ReplayDriver, PhysicallyTimedKindsAreNotValidated)
{
    det::ReplayDriver driver(makeTrace({}, /*complete=*/true),
                             /*policyAborts=*/false);
    // None of these are in the trace, yet none may fault: their timing
    // (and for RaceDetected, their location) is physical.
    driver.onEvent(ev(obs::EventKind::SfrBegin, 1, 0, 0));
    driver.onEvent(ev(obs::EventKind::ThreadStart, 0, 1, 0));
    driver.onEvent(ev(obs::EventKind::WatchdogTrip, 2, 2, 0));
    driver.onEvent(ev(obs::EventKind::RaceDetected, 3, 3, 0));
    EXPECT_FALSE(driver.faulted());
}

TEST(ReplayDriver, DisarmStopsEnforcementAndValidation)
{
    det::ReplayDriver driver(
        makeTrace({ev(obs::EventKind::TurnGrant, 1, 0, 0)},
                  /*complete=*/true),
        /*policyAborts=*/false);
    driver.disarm();
    EXPECT_FALSE(driver.armed());
    // Disarmed: grants pass through to Kendo, events are ignored.
    EXPECT_EQ(driver.tryGrant(3, 9, true), det::GrantStatus::Granted);
    driver.onEvent(ev(obs::EventKind::SyncAcquire, 42, 0, 3));
    EXPECT_FALSE(driver.faulted());
}

TEST(ReplayDriver, BodyTidBeyondHeaderIsBadMeta)
{
    try {
        det::ReplayDriver driver(
            makeTrace({ev(obs::EventKind::TurnGrant, 1, 0, 9)},
                      /*complete=*/true),
            /*policyAborts=*/false);
        FAIL() << "expected a BadMeta fault";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.fault(), TraceFault::BadMeta);
    }
}

TEST(ReplayDriver, RaiseTruncatedWaitLatchesTheFault)
{
    det::ReplayDriver driver(makeTrace({}, /*complete=*/false),
                             /*policyAborts=*/false);
    EXPECT_THROW(driver.raiseTruncatedWait(2, 17), TraceError);
    EXPECT_TRUE(driver.faulted());
    EXPECT_EQ(driver.faultKind(), TraceFault::Truncated);
}

// ---------------------------------------------------------------------
// Spec <-> meta mapping.
// ---------------------------------------------------------------------

RunSpec
smallSpec(const std::string &workload, std::uint64_t seed,
          OnRacePolicy policy)
{
    RunSpec spec;
    spec.workload = workload;
    spec.backend = BackendKind::Clean;
    spec.params.threads = 4;
    spec.params.scale = Scale::Test;
    spec.params.seed = seed;
    spec.runtime.maxThreads = 16;
    spec.runtime.heap.sharedBytes = std::size_t{256} << 20;
    spec.runtime.heap.privateBytes = std::size_t{64} << 20;
    spec.runtime.watchdogMs = 5000;
    spec.runtime.onRace = policy;
    return spec;
}

TEST(SpecMeta, MetaRoundTripsThroughSpec)
{
    RunSpec spec = smallSpec("fft", 1234, OnRacePolicy::Recover);
    spec.runtime.inject.enabled = true;
    spec.runtime.inject.seed = 99;
    spec.runtime.inject.skipAcquireRate = 0.05;
    const obs::TraceMeta meta = wl::metaForSpec(spec);
    const RunSpec rebuilt = wl::specFromTraceMeta(meta);
    EXPECT_EQ(wl::metaForSpec(rebuilt), meta);
    EXPECT_NO_THROW(wl::validateReplaySpec(rebuilt, meta));
}

TEST(SpecMeta, BadMetaValuesAreRejected)
{
    const auto faultOf = [](const obs::TraceMeta &meta) {
        try {
            wl::specFromTraceMeta(meta);
        } catch (const TraceError &e) {
            return e.fault();
        }
        return TraceFault::Unsupported;
    };

    obs::TraceMeta meta = wl::metaForSpec(smallSpec("fft", 1, {}));
    meta.workload = "no_such_kernel";
    EXPECT_EQ(faultOf(meta), TraceFault::BadMeta);

    meta = wl::metaForSpec(smallSpec("fft", 1, {}));
    meta.scale = 99;
    EXPECT_EQ(faultOf(meta), TraceFault::BadMeta);

    meta = wl::metaForSpec(smallSpec("fft", 1, {}));
    meta.backend = static_cast<std::uint32_t>(BackendKind::Native);
    EXPECT_EQ(faultOf(meta), TraceFault::BadMeta);

    meta = wl::metaForSpec(smallSpec("fft", 1, {}));
    meta.onRace = 17;
    EXPECT_EQ(faultOf(meta), TraceFault::BadMeta);
}

TEST(SpecMeta, MismatchNamesTheDifference)
{
    const RunSpec recorded = smallSpec("fft", 1, OnRacePolicy::Throw);
    const obs::TraceMeta meta = wl::metaForSpec(recorded);

    RunSpec other = recorded;
    other.params.threads = 8;
    try {
        wl::validateReplaySpec(other, meta);
        FAIL() << "expected a ConfigMismatch fault";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.fault(), TraceFault::ConfigMismatch);
        EXPECT_NE(std::string(e.what()).find("threads"),
                  std::string::npos)
            << e.what();
    }

    other = recorded;
    other.runtime.onRace = OnRacePolicy::Report;
    EXPECT_THROW(wl::validateReplaySpec(other, meta), TraceError);
}

TEST(SpecMeta, ExitCodeContractRanksTraceFaultFirst)
{
    EXPECT_EQ(exitCodeForRun(true, true, true, true),
              static_cast<int>(ExitCode::TraceError));
    EXPECT_EQ(static_cast<int>(ExitCode::TraceError), 6);
}

// ---------------------------------------------------------------------
// End-to-end round trips.
// ---------------------------------------------------------------------

/** Records @p spec to @p path and returns the run; the caller replays
 *  with the identical spec (plus replayPath). */
RunResult
recordRun(RunSpec spec, const std::string &path)
{
    spec.recordPath = path;
    return wl::runWorkload(spec);
}

RunResult
replayRun(RunSpec spec, const std::string &path)
{
    spec.replayPath = path;
    return wl::runWorkload(spec);
}

TEST(ReplayRoundTrip, SixtyFourSeedsAllPoliciesByteIdentical)
{
    const OnRacePolicy policies[] = {
        OnRacePolicy::Throw, OnRacePolicy::Report, OnRacePolicy::Count,
        OnRacePolicy::Recover};
    const char *const workloads[] = {"fft", "lu_cb", "blackscholes"};
    const std::string path = tmpPath("roundtrip.cleantrace");

    for (std::uint64_t seed = 0; seed < 64; ++seed) {
        const OnRacePolicy policy = policies[seed % 4];
        const bool inject = ((seed / 4) % 2) != 0;
        RunSpec spec = smallSpec(workloads[(seed / 8) % 3],
                                 0xc0ffee + seed, policy);
        if (inject) {
            // Metadata-only races: the physical lock still serializes
            // the data, so detection and recovery are deterministic.
            spec.runtime.inject.enabled = true;
            spec.runtime.inject.seed = seed + 1;
            spec.runtime.inject.skipAcquireRate = 0.05;
        }
        SCOPED_TRACE("seed " + std::to_string(seed) + " " +
                     spec.workload + " policy " +
                     onRacePolicyName(policy) +
                     (inject ? " +skip-acquire" : ""));

        const RunResult a = recordRun(spec, path);
        const RunResult b = replayRun(spec, path);

        EXPECT_FALSE(b.traceFault)
            << b.traceFaultKind << ": " << b.traceFaultMessage;
        EXPECT_EQ(b.raceException, a.raceException);
        EXPECT_EQ(b.deadlock, a.deadlock);
        const bool aborted = a.raceException || a.deadlock;
        if (aborted) {
            // How many sibling threads also report before observing the
            // abort is physical; only the verdict is deterministic.
            EXPECT_EQ(b.raceCount > 0, a.raceCount > 0);
        } else {
            // Completing runs are bit-exact: same counts, same output,
            // byte-equal failure report and metrics.
            EXPECT_EQ(b.raceCount, a.raceCount);
            EXPECT_EQ(b.recoveredRaces, a.recoveredRaces);
            EXPECT_EQ(b.recoveryAttempts, a.recoveryAttempts);
            EXPECT_EQ(b.quarantinedSites, a.quarantinedSites);
            EXPECT_EQ(b.outputHash, a.outputHash);
            EXPECT_EQ(b.failureReport, a.failureReport);
            EXPECT_EQ(b.metricsJson, a.metricsJson);
            EXPECT_TRUE(b.fingerprint() == a.fingerprint());
        }
    }
    std::filesystem::remove(path);
}

TEST(ReplayRoundTrip, AsyncCheckRecordsAndReplaysByteIdentical)
{
    // --async-check moves batched drains onto a checker thread but is
    // deliberately NOT part of the trace header (runner.cc meta): it
    // changes no recorded decision, so a trace captured with the
    // checker thread must replay byte-identically both with and
    // without it.
    const std::string path = tmpPath("async_roundtrip.cleantrace");
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
        RunSpec spec = smallSpec("streamcluster", 0xa51c + seed,
                                 OnRacePolicy::Report);
        spec.runtime.asyncCheck = true;
        SCOPED_TRACE("seed " + std::to_string(seed));

        const RunResult a = recordRun(spec, path);
        ASSERT_FALSE(a.raceException);

        RunSpec asyncReplay = spec;
        RunSpec syncReplay = spec;
        syncReplay.runtime.asyncCheck = false;
        for (const RunSpec &r : {asyncReplay, syncReplay}) {
            const RunResult b = replayRun(r, path);
            SCOPED_TRACE(r.runtime.asyncCheck ? "async replay"
                                              : "sync replay");
            EXPECT_FALSE(b.traceFault)
                << b.traceFaultKind << ": " << b.traceFaultMessage;
            EXPECT_EQ(b.raceCount, a.raceCount);
            EXPECT_EQ(b.outputHash, a.outputHash);
            EXPECT_EQ(b.failureReport, a.failureReport);
            EXPECT_EQ(b.metricsJson, a.metricsJson);
            EXPECT_TRUE(b.fingerprint() == a.fingerprint());
        }
    }
    std::filesystem::remove(path);
}

/** Budget spec whose gate decides often enough at test scale: 64-read
 *  windows and a single burst window, so forced levels actually shed. */
RunSpec
budgetSpec(const std::string &workload, std::uint64_t seed,
           std::uint32_t budget)
{
    RunSpec spec = smallSpec(workload, seed, OnRacePolicy::Throw);
    spec.runtime.overheadBudget = budget;
    spec.runtime.sample.windowLog2 = 6;
    spec.runtime.sample.burstWindows = 1;
    return spec;
}

TEST(ReplayRoundTrip, BudgetedGovernedRunsAreByteIdentical)
{
    // The governed path: levels come from wall-clock EWMAs, so WHICH
    // levels get adopted is physical — but the trace records them and
    // the replay must re-adopt exactly those, reproducing every shed
    // decision and therefore byte-equal reports and metrics.
    const std::string path = tmpPath("budget_governed.cleantrace");
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        RunSpec spec = budgetSpec("streamcluster", 0xb1d6e7 + seed, 10);
        spec.runtime.sampleCalibLog2 = 1; // calibrate aggressively
        SCOPED_TRACE("seed " + std::to_string(seed));
        const RunResult a = recordRun(spec, path);
        ASSERT_FALSE(a.raceException);
        const RunResult b = replayRun(spec, path);
        EXPECT_FALSE(b.traceFault)
            << b.traceFaultKind << ": " << b.traceFaultMessage;
        EXPECT_EQ(b.checker.shedReads, a.checker.shedReads);
        EXPECT_EQ(b.outputHash, a.outputHash);
        EXPECT_EQ(b.failureReport, a.failureReport);
        EXPECT_EQ(b.metricsJson, a.metricsJson);
    }
    std::filesystem::remove(path);
}

TEST(ReplayRoundTrip, ForcedLevelBudgetedRunsAreByteIdentical)
{
    const std::string path = tmpPath("budget_forced.cleantrace");
    for (const std::int32_t level : {0, 3, 8, 16}) {
        RunSpec spec = budgetSpec("streamcluster", 0x5a3d, 10);
        spec.runtime.sampleForceLevel = level;
        SCOPED_TRACE("level " + std::to_string(level));
        const RunResult a = recordRun(spec, path);
        const RunResult b = replayRun(spec, path);
        EXPECT_FALSE(b.traceFault)
            << b.traceFaultKind << ": " << b.traceFaultMessage;
        if (level > 0)
            EXPECT_GT(a.checker.shedReads, 0u);
        EXPECT_EQ(b.checker.shedReads, a.checker.shedReads);
        EXPECT_EQ(b.failureReport, a.failureReport);
        EXPECT_EQ(b.metricsJson, a.metricsJson);
    }
    std::filesystem::remove(path);
}

TEST(ReplayRejection, TamperedSampleShedIsDivergence)
{
    // Satellite 1's directed mismatch: sampling decisions are recorded
    // in the trace and VALIDATED on replay — corrupt one SampleShed
    // payload and the replay must fault with a step-indexed divergence
    // naming the event, exactly like a corrupted TurnGrant.
    const std::string path = tmpPath("shed_tamper.cleantrace");
    const std::string mutated = tmpPath("shed_tamper_mut.cleantrace");
    RunSpec spec = budgetSpec("streamcluster", 0x7e57, 10);
    spec.runtime.sampleForceLevel = 8; // deterministic, plenty of sheds
    recordRun(spec, path);

    obs::TraceFile trace = obs::readTraceFile(path);
    ASSERT_TRUE(trace.complete);
    std::size_t victim = trace.events.size();
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
        if (trace.events[i].kind == obs::EventKind::SampleShed) {
            victim = i;
            break;
        }
    }
    ASSERT_LT(victim, trace.events.size())
        << "no SampleShed event recorded (shedding never engaged?)";
    trace.events[victim].arg0 += 1; // claim one more shed than happened
    {
        obs::RecordSink sink(mutated, trace.meta);
        for (const obs::Event &e : trace.events)
            sink.onEvent(e);
        sink.finalize();
    }

    const RunResult result = replayRun(spec, mutated);
    EXPECT_TRUE(result.traceFault);
    EXPECT_EQ(result.traceFaultKind, "divergence");
    EXPECT_NE(result.traceFaultStep, TraceError::kNoStep);
    EXPECT_NE(result.traceFaultMessage.find("sample_shed"),
              std::string::npos)
        << result.traceFaultMessage;
    std::filesystem::remove(path);
    std::filesystem::remove(mutated);
}

TEST(SpecMeta, SamplingKnobsRoundTripThroughTheHeader)
{
    RunSpec spec = smallSpec("fft", 77, OnRacePolicy::Throw);
    spec.runtime.overheadBudget = 25;
    spec.runtime.sample.windowLog2 = 9;
    spec.runtime.sample.burstWindows = 2;
    spec.runtime.sample.regionLog2 = 7;
    spec.runtime.sample.maxStrikes = 5;
    spec.runtime.sample.seed = 0xfeedface;
    spec.runtime.sampleCalibLog2 = 4;
    spec.runtime.sampleForceLevel = 11;
    const obs::TraceMeta meta = wl::metaForSpec(spec);
    EXPECT_EQ(meta.overheadBudget, 25u);
    EXPECT_EQ(meta.sampleForceLevelP1, 12u); // -1=0 encoding, shifted
    const RunSpec rebuilt = wl::specFromTraceMeta(meta);
    EXPECT_EQ(rebuilt.runtime.overheadBudget, 25u);
    EXPECT_EQ(rebuilt.runtime.sample.seed, 0xfeedfaceu);
    EXPECT_EQ(rebuilt.runtime.sampleForceLevel, 11);
    EXPECT_EQ(wl::metaForSpec(rebuilt), meta);

    // Governed (-1) survives the unsigned encoding too.
    spec.runtime.sampleForceLevel = -1;
    const RunSpec governed =
        wl::specFromTraceMeta(wl::metaForSpec(spec));
    EXPECT_EQ(governed.runtime.sampleForceLevel, -1);
}

TEST(ReplayRejection, BudgetMismatchIsConfigMismatch)
{
    const std::string path = tmpPath("budget_mismatch.cleantrace");
    const RunSpec spec = budgetSpec("fft", 31, 10);
    recordRun(spec, path);
    RunSpec other = spec;
    other.runtime.overheadBudget = 50;
    try {
        replayRun(other, path);
        FAIL() << "expected a ConfigMismatch fault";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.fault(), TraceFault::ConfigMismatch);
    }
    std::filesystem::remove(path);
}

TEST(ReplayRoundTrip, KillFaultDeadlockReproduces)
{
    const std::string path = tmpPath("kill.cleantrace");
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        RunSpec spec = smallSpec("fft", 0xdead + seed,
                                 OnRacePolicy::Throw);
        spec.runtime.watchdogMs = 300;
        spec.runtime.inject.enabled = true;
        spec.runtime.inject.seed = seed + 11;
        spec.runtime.inject.killRate = 0.0005;
        SCOPED_TRACE("seed " + std::to_string(seed));

        const RunResult a = recordRun(spec, path);
        const RunResult b = replayRun(spec, path);
        EXPECT_FALSE(b.traceFault)
            << b.traceFaultKind << ": " << b.traceFaultMessage;
        // An injected kill strands the victims' waiters: the recorded
        // watchdog deadlock must replay as a watchdog deadlock, and a
        // clean run as a clean run.
        EXPECT_EQ(b.deadlock, a.deadlock);
        EXPECT_EQ(b.raceException, a.raceException);
    }
    std::filesystem::remove(path);
}

TEST(ReplayRejection, WrongThreadCountIsConfigMismatch)
{
    const std::string path = tmpPath("wrong_threads.cleantrace");
    const RunSpec spec = smallSpec("fft", 5, OnRacePolicy::Throw);
    recordRun(spec, path);

    RunSpec other = spec;
    other.params.threads = 8;
    try {
        replayRun(other, path);
        FAIL() << "expected a ConfigMismatch fault";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.fault(), TraceFault::ConfigMismatch);
        EXPECT_NE(std::string(e.what()).find("8 threads"),
                  std::string::npos)
            << e.what();
    }
    std::filesystem::remove(path);
}

TEST(ReplayRejection, WrongSchemaVersionIsBadVersion)
{
    const std::string path = tmpPath("wrong_version.cleantrace");
    recordRun(smallSpec("fft", 6, OnRacePolicy::Throw), path);

    std::string bytes = readFileBytes(path);
    const std::string goodLine =
        "CLEANTRACE " + std::to_string(obs::kTraceSchemaVersion) + "\n";
    ASSERT_EQ(bytes.rfind(goodLine, 0), 0u);
    bytes.replace(0, goodLine.size(),
                  "CLEANTRACE " +
                      std::to_string(obs::kTraceSchemaVersion + 1) + "\n");
    writeFileBytes(path, bytes);

    try {
        obs::readTraceFile(path);
        FAIL() << "expected a BadVersion fault";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.fault(), TraceFault::BadVersion);
    }
    std::filesystem::remove(path);
}

TEST(ReplayRejection, MidReplayDivergenceNamesTheStep)
{
    const std::string path = tmpPath("diverge.cleantrace");
    const std::string mutated = tmpPath("diverge_mut.cleantrace");
    const RunSpec spec = smallSpec("fft", 7, OnRacePolicy::Throw);
    recordRun(spec, path);

    // Corrupt one mid-run TurnGrant payload and re-serialize: the
    // replayed grant will disagree with the recorded one.
    obs::TraceFile trace = obs::readTraceFile(path);
    ASSERT_TRUE(trace.complete);
    std::size_t grants = 0, victim = trace.events.size();
    for (std::size_t i = 0; i < trace.events.size(); ++i) {
        if (trace.events[i].kind == obs::EventKind::TurnGrant &&
            ++grants == 20) {
            victim = i;
            break;
        }
    }
    ASSERT_LT(victim, trace.events.size());
    trace.events[victim].arg0 += 1;
    {
        obs::RecordSink sink(mutated, trace.meta);
        for (const obs::Event &e : trace.events)
            sink.onEvent(e);
        sink.finalize();
    }

    const RunResult result = replayRun(spec, mutated);
    EXPECT_TRUE(result.traceFault);
    EXPECT_EQ(result.traceFaultKind, "divergence");
    EXPECT_NE(result.traceFaultStep, TraceError::kNoStep);
    EXPECT_NE(result.traceFaultMessage.find("turn_grant"),
              std::string::npos)
        << result.traceFaultMessage;
    std::filesystem::remove(path);
    std::filesystem::remove(mutated);
}

TEST(ReplayTruncation, TwentyRandomCutsFailCleanly)
{
    const std::string path = tmpPath("fuzz.cleantrace");
    const std::string cutPath = tmpPath("fuzz_cut.cleantrace");
    RunSpec spec = smallSpec("fft", 8, OnRacePolicy::Throw);
    spec.params.threads = 2;
    spec.runtime.watchdogMs = 2000;
    const RunResult reference = recordRun(spec, path);
    ASSERT_FALSE(reference.raceException);
    const std::string bytes = readFileBytes(path);
    ASSERT_GT(bytes.size(), 64u);

    Prng prng(42);
    for (int i = 0; i < 20; ++i) {
        // Cut anywhere in the file — header, body, footer.
        const auto cut = 1 + prng.nextBelow(bytes.size() - 1);
        writeFileBytes(cutPath, bytes.substr(0, cut));
        SCOPED_TRACE("iteration " + std::to_string(i) + " cut at " +
                     std::to_string(cut));
        try {
            const RunResult r = replayRun(spec, cutPath);
            if (r.traceFault) {
                // Mid-run: the prefix replayed, then truncation (or the
                // divergence a half-written record produces) was
                // reported with a step index — never a hang.
                EXPECT_TRUE(r.traceFaultKind == "truncated" ||
                            r.traceFaultKind == "divergence")
                    << r.traceFaultKind;
            } else {
                // The cut only lost the footer-adjacent tail the run
                // never needed: the replay completed and must match.
                EXPECT_EQ(r.outputHash, reference.outputHash);
            }
        } catch (const TraceError &) {
            // Pre-run: the header itself was unreadable. Structured
            // rejection is exactly the contract.
        }
    }
    std::filesystem::remove(path);
    std::filesystem::remove(cutPath);
}

TEST(ReplayTruncation, HalfTraceReportsTruncationNotDeadlock)
{
    const std::string path = tmpPath("half.cleantrace");
    const std::string cutPath = tmpPath("half_cut.cleantrace");
    RunSpec spec = smallSpec("fft", 10, OnRacePolicy::Throw);
    spec.runtime.watchdogMs = 500;
    recordRun(spec, path);

    // Keep the header and the first half of the records, no footer —
    // the on-disk state of a recorder that died mid-run.
    const std::string bytes = readFileBytes(path);
    const std::size_t bodyBytes = obs::readTraceFile(path).events.size() *
                                  obs::kTraceRecordBytes;
    const std::size_t headerLen = bytes.size() - bodyBytes - 16;
    writeFileBytes(cutPath,
                   bytes.substr(0, headerLen + bodyBytes / 2 -
                                       (bodyBytes / 2) %
                                           obs::kTraceRecordBytes));

    const RunResult r = replayRun(spec, cutPath);
    // The prefix replays; the first step past it is reported as a
    // truncation (immediately at a turn request, or via the watchdog's
    // raiseTruncatedWait for a starved blocking wait) — never as the
    // recorded run's deadlock and never as a hang.
    EXPECT_TRUE(r.traceFault);
    EXPECT_EQ(r.traceFaultKind, "truncated");
    EXPECT_FALSE(r.deadlock);
    std::filesystem::remove(path);
    std::filesystem::remove(cutPath);
}

TEST(ReplayRejection, UnsupportedBackendIsRejected)
{
    RunSpec spec = smallSpec("fft", 9, OnRacePolicy::Throw);
    spec.backend = BackendKind::DetectOnly;
    spec.recordPath = tmpPath("unsupported.cleantrace");
    try {
        wl::runWorkload(spec);
        FAIL() << "expected an Unsupported fault";
    } catch (const TraceError &e) {
        EXPECT_EQ(e.fault(), TraceFault::Unsupported);
    }
}

} // namespace
} // namespace clean
