
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detectors/fasttrack.cc" "src/CMakeFiles/clean_detectors.dir/detectors/fasttrack.cc.o" "gcc" "src/CMakeFiles/clean_detectors.dir/detectors/fasttrack.cc.o.d"
  "/root/repo/src/detectors/tsan_lite.cc" "src/CMakeFiles/clean_detectors.dir/detectors/tsan_lite.cc.o" "gcc" "src/CMakeFiles/clean_detectors.dir/detectors/tsan_lite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clean_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_det.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
