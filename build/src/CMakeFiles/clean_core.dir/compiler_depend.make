# Empty compiler generated dependencies file for clean_core.
# This may be replaced when dependencies are built.
