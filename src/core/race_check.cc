#include "core/race_check.h"

#include <algorithm>

#include "core/linear_shadow.h"
#include "core/sparse_shadow.h"

namespace clean
{

namespace
{

/** 16-byte CAS publishing 4 epochs at once (cmpxchg16b on x86-64). */
bool
cas128(EpochValue *slots, EpochValue seen, EpochValue newEpoch)
{
    using U128 = unsigned __int128;
    U128 expected = 0, desired = 0;
    for (int i = 0; i < 4; ++i) {
        expected |= static_cast<U128>(seen) << (32 * i);
        desired |= static_cast<U128>(newEpoch) << (32 * i);
    }
    auto *wide = reinterpret_cast<U128 *>(slots);
    return __atomic_compare_exchange_n(wide, &expected, desired, false,
                                       __ATOMIC_RELAXED, __ATOMIC_RELAXED);
}

/** 8-byte CAS publishing 2 epochs at once. */
bool
cas64(EpochValue *slots, EpochValue seen, EpochValue newEpoch)
{
    std::uint64_t expected =
        (static_cast<std::uint64_t>(seen) << 32) | seen;
    const std::uint64_t desired =
        (static_cast<std::uint64_t>(newEpoch) << 32) | newEpoch;
    auto *wide = reinterpret_cast<std::uint64_t *>(slots);
    return __atomic_compare_exchange_n(wide, &expected, desired, false,
                                       __ATOMIC_RELAXED, __ATOMIC_RELAXED);
}

bool
cas32(EpochValue *slot, EpochValue seen, EpochValue newEpoch)
{
    return __atomic_compare_exchange_n(slot, &seen, newEpoch, false,
                                       __ATOMIC_RELAXED, __ATOMIC_RELAXED);
}

} // namespace

template <class ShadowT>
void
RaceChecker<ShadowT>::readRun(ThreadState &ts, Addr addr,
                              EpochValue *slots, std::size_t n)
{
    if (config_.vectorized && n >= 4) {
        // Common case (§4.4): every byte of the access carries one epoch,
        // so a single comparison covers the whole access.
        if (allEqual(slots, n)) {
            ts.stats.wideSameEpoch++;
            checkEpoch(ts, addr, loadEpoch(slots), RaceKind::Raw);
            return;
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        checkEpoch(ts, addr + i, loadEpoch(slots + i), RaceKind::Raw);
}

template <class ShadowT>
void
RaceChecker<ShadowT>::writeRun(ThreadState &ts, Addr addr,
                               EpochValue *slots, std::size_t n)
{
    if (config_.atomicity == AtomicityMode::Locked)
        writeRunLocked(ts, addr, slots, n);
    else
        writeRunCas(ts, addr, slots, n);
}

template <class ShadowT>
void
RaceChecker<ShadowT>::writeRunCas(ThreadState &ts, Addr addr,
                                  EpochValue *slots, std::size_t n)
{
    const EpochValue newEpoch = ts.ownEpoch;
    if (config_.vectorized && n >= 4 && (addr & 3) == 0 && (n & 3) == 0) {
        if (allEqual(slots, n)) {
            ts.stats.wideSameEpoch++;
            const EpochValue seen = loadEpoch(slots);
            checkEpoch(ts, addr, seen, RaceKind::Waw);
            if (seen != newEpoch) {
                ts.stats.epochUpdates++;
                publishWide(ts, addr, slots, n, seen, newEpoch);
            }
            return;
        }
    }
    publishBytes(ts, addr, slots, n, newEpoch);
}

template <class ShadowT>
void
RaceChecker<ShadowT>::writeRunLocked(ThreadState &ts, Addr addr,
                                     EpochValue *slots, std::size_t n)
{
    // Ablation path: serialize conflicting checks with a per-line lock,
    // the strategy the paper cites as costing > 40% of detection time in
    // precise detectors. Accesses never span more than two shards here
    // (n <= 64 in practice); lock both in address order to stay
    // deadlock-free.
    std::mutex &first = shardLocks_.forAddr(addr);
    std::mutex &second = shardLocks_.forAddr(addr + n - 1);
    const bool twoShards = &first != &second;
    first.lock();
    if (twoShards)
        second.lock();
    // With the lock held the plain Figure 2 sequence is safe.
    const EpochValue newEpoch = ts.ownEpoch;
    try {
        for (std::size_t i = 0; i < n; ++i) {
            const EpochValue seen = loadEpoch(slots + i);
            checkEpoch(ts, addr + i, seen, RaceKind::Waw);
            if (seen != newEpoch) {
                ts.stats.epochUpdates++;
                __atomic_store_n(slots + i, newEpoch, __ATOMIC_RELAXED);
            }
        }
    } catch (...) {
        if (twoShards)
            second.unlock();
        first.unlock();
        throw;
    }
    if (twoShards)
        second.unlock();
    first.unlock();
}

template <class ShadowT>
void
RaceChecker<ShadowT>::publishWide(ThreadState &ts, Addr addr,
                                  EpochValue *slots, std::size_t n,
                                  EpochValue seen, EpochValue newEpoch)
{
    std::size_t i = 0;
    // 16-byte CAS requires 16-byte-aligned slots: true whenever the data
    // address is 4-byte aligned (slot address = shadow base + 4 * offset).
    const bool aligned16 =
        (reinterpret_cast<std::uintptr_t>(slots) & 15) == 0;
    while (i + 4 <= n && aligned16) {
        if (!cas128(slots + i, seen, newEpoch))
            throwRace(ts, addr + i, seen, RaceKind::Waw);
        ts.stats.wideCasUpdates++;
        i += 4;
    }
    while (i + 2 <= n) {
        if (!cas64(slots + i, seen, newEpoch))
            throwRace(ts, addr + i, seen, RaceKind::Waw);
        i += 2;
    }
    for (; i < n; ++i) {
        if (!cas32(slots + i, seen, newEpoch))
            throwRace(ts, addr + i, seen, RaceKind::Waw);
    }
}

template <class ShadowT>
void
RaceChecker<ShadowT>::publishBytes(ThreadState &ts, Addr addr,
                                   EpochValue *slots, std::size_t n,
                                   EpochValue newEpoch)
{
    for (std::size_t i = 0; i < n; ++i) {
        const EpochValue seen = loadEpoch(slots + i);
        checkEpoch(ts, addr + i, seen, RaceKind::Waw);
        if (seen == newEpoch)
            continue;
        ts.stats.epochUpdates++;
        if (!cas32(slots + i, seen, newEpoch)) {
            // Another thread published a conflicting epoch between our
            // load and the CAS: a concurrent unordered write — WAW.
            throwRace(ts, addr + i, seen, RaceKind::Waw);
        }
    }
}

template <class ShadowT>
void
RaceChecker<ShadowT>::readGranular(ThreadState &ts, Addr addr,
                                   std::size_t size)
{
    const unsigned g = config_.granuleLog2;
    const Addr first = addr >> g;
    const Addr last = (addr + (size ? size - 1 : 0)) >> g;
    for (Addr u = first; u <= last; ++u)
        checkEpoch(ts, u, loadEpoch(shadow_.slots(u << g)),
                   RaceKind::Raw);
}

template <class ShadowT>
void
RaceChecker<ShadowT>::writeGranular(ThreadState &ts, Addr addr,
                                    std::size_t size)
{
    const unsigned g = config_.granuleLog2;
    const Addr first = addr >> g;
    const Addr last = (addr + (size ? size - 1 : 0)) >> g;
    const EpochValue newEpoch = ts.ownEpoch;
    for (Addr u = first; u <= last; ++u) {
        EpochValue *slot = shadow_.slots(u << g);
        const EpochValue seen = loadEpoch(slot);
        checkEpoch(ts, u, seen, RaceKind::Waw);
        if (seen == newEpoch)
            continue;
        ts.stats.epochUpdates++;
        if (!cas32(slot, seen, newEpoch)) {
            throwRace(ts, u, seen, RaceKind::Waw);
        }
    }
}

template class RaceChecker<LinearShadow>;
template class RaceChecker<SparseShadow>;

} // namespace clean
