#include "sim/memory_hierarchy.h"

namespace clean::sim
{

MemoryHierarchy::MemoryHierarchy(unsigned cores,
                                 const LatencyConfig &latency)
    : cores_(cores), latency_(latency),
      l3_(16 * 1024 * 1024, 16)
{
    for (unsigned c = 0; c < cores; ++c) {
        l1_.push_back(std::make_unique<Cache>(64 * 1024, 8));
        l2_.push_back(std::make_unique<Cache>(256 * 1024, 8));
    }
}

Cycles
MemoryHierarchy::accessLine(unsigned core, Addr line, bool write)
{
    ++accesses_;
    Cycles latency;

    if (l1_[core]->contains(line)) {
        latency = latency_.l1Hit;
        l1_[core]->access(line); // LRU touch
    } else if (l2_[core]->contains(line)) {
        latency = latency_.l2LocalHit;
        l2_[core]->access(line);
        l1_[core]->access(line); // fill
    } else {
        // Snoop the other cores' private caches.
        bool remote = false;
        for (unsigned o = 0; o < cores_ && !remote; ++o) {
            if (o == core)
                continue;
            remote = l2_[o]->contains(line) || l1_[o]->contains(line);
        }
        if (remote) {
            latency = latency_.l2RemoteHit;
        } else if (l3_.contains(line)) {
            latency = latency_.l3Hit;
        } else {
            latency = latency_.memory;
            ++llcMisses_;
        }
        // Fill the local hierarchy (and L3 on the way in).
        l3_.access(line);
        l2_[core]->access(line);
        l1_[core]->access(line);
    }

    if (write) {
        // MESI upgrade: invalidate every other private copy.
        for (unsigned o = 0; o < cores_; ++o) {
            if (o == core)
                continue;
            if (l1_[o]->contains(line) || l2_[o]->contains(line)) {
                l1_[o]->invalidate(line);
                l2_[o]->invalidate(line);
                ++invalidations_;
            }
        }
    }
    return latency;
}

Cycles
MemoryHierarchy::access(unsigned core, Addr addr, std::size_t size,
                        bool write)
{
    const Addr firstLine = addr / kCacheLineBytes;
    const Addr lastLine = (addr + (size ? size - 1 : 0)) / kCacheLineBytes;
    Cycles total = 0;
    for (Addr line = firstLine; line <= lastLine; ++line)
        total += accessLine(core, line, write);
    return total;
}

std::uint64_t
MemoryHierarchy::l1Hits() const
{
    std::uint64_t n = 0;
    for (const auto &cache : l1_)
        n += cache->hits();
    return n;
}

std::uint64_t
MemoryHierarchy::l1Misses() const
{
    std::uint64_t n = 0;
    for (const auto &cache : l1_)
        n += cache->misses();
    return n;
}

void
MemoryHierarchy::exportTo(StatSet &stats, const std::string &prefix) const
{
    stats.counter(prefix + ".accesses") += accesses_;
    stats.counter(prefix + ".l1Hits") += l1Hits();
    stats.counter(prefix + ".l1Misses") += l1Misses();
    stats.counter(prefix + ".l3Hits") += l3_.hits();
    stats.counter(prefix + ".llcMisses") += llcMisses_;
    stats.counter(prefix + ".invalidations") += invalidations_;
}

} // namespace clean::sim
