/**
 * @file
 * Tiny command-line / environment option parser used by benches and
 * examples.
 *
 * Syntax: --name=value or --name value or bare --flag (boolean true).
 * Environment fallback: option "threads" also reads CLEAN_THREADS.
 */

#ifndef CLEAN_SUPPORT_OPTIONS_H
#define CLEAN_SUPPORT_OPTIONS_H

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace clean
{

/**
 * Malformed option value (e.g. `--watchdog-ms=abc` or `--seed=12junk`).
 * Carries the offending option and value so callers can print a precise
 * diagnostic; tools catch it at top level and exit non-zero.
 */
class OptionError : public std::runtime_error
{
  public:
    OptionError(const std::string &option, const std::string &value,
                const char *expected)
        : std::runtime_error("invalid value '" + value + "' for option --" +
                             option + " (expected " + expected + ")"),
          option_(option), value_(value)
    {
    }

    const std::string &option() const { return option_; }
    const std::string &value() const { return value_; }

  private:
    std::string option_;
    std::string value_;
};

/** Parsed option bag with typed getters and defaults. */
class Options
{
  public:
    Options() = default;

    /** Parses argv; unrecognized positional arguments are kept in order. */
    static Options parse(int argc, char **argv);

    /** True when --name was given (with or without a value). */
    bool has(const std::string &name) const;

    std::string getString(const std::string &name,
                          const std::string &def = "") const;
    /** @throws OptionError on a non-numeric / trailing-garbage value. */
    std::int64_t getInt(const std::string &name, std::int64_t def) const;
    /** @throws OptionError on a non-numeric / trailing-garbage value. */
    double getDouble(const std::string &name, double def) const;
    bool getBool(const std::string &name, bool def = false) const;

    /** Positional (non --option) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Manually inject an option (used by tests). */
    void set(const std::string &name, const std::string &value);

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace clean

#endif // CLEAN_SUPPORT_OPTIONS_H
