/**
 * @file
 * Lightweight named-counter statistics.
 *
 * Each subsystem owns a StatSet; counters are plain uint64 slots that hot
 * paths bump without synchronization (per-thread sets are merged after a
 * run). Benches print StatSets as aligned tables.
 */

#ifndef CLEAN_SUPPORT_STATS_H
#define CLEAN_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clean
{

/** An ordered collection of named uint64 counters. */
class StatSet
{
  public:
    StatSet() = default;

    /** Returns a reference to the counter, creating it at zero if new. */
    std::uint64_t &counter(const std::string &name);

    /** Read-only lookup; returns 0 for unknown counters. */
    std::uint64_t get(const std::string &name) const;

    /** Adds every counter of @p other into this set. */
    void merge(const StatSet &other);

    /** Sets every counter to zero (keeps the names). */
    void clear();

    /** All counters in insertion order as (name, value) pairs. */
    std::vector<std::pair<std::string, std::uint64_t>> entries() const;

    /** Multi-line "name: value" dump, sorted by insertion order. */
    std::string format(const std::string &indent = "  ") const;

  private:
    std::map<std::string, std::size_t> index_;
    std::vector<std::pair<std::string, std::uint64_t>> slots_;
};

} // namespace clean

#endif // CLEAN_SUPPORT_STATS_H
