/**
 * @file
 * One-call workload execution under any backend, with the measurements
 * the paper's figures need.
 */

#ifndef CLEAN_WORKLOADS_RUNNER_H
#define CLEAN_WORKLOADS_RUNNER_H

#include <string>
#include <vector>

#include "core/runtime.h"
#include "core/thread_state.h"
#include "obs/trace_schema.h"
#include "support/trace_error.h"
#include "workloads/trace.h"
#include "workloads/workload.h"

namespace clean::wl
{

/** Which system executes the workload. */
enum class BackendKind
{
    Native,       ///< uninstrumented baseline
    Clean,        ///< detection + deterministic sync (full CLEAN)
    DetectOnly,   ///< WAW/RAW detection only (Fig. 6 middle bar)
    KendoOnly,    ///< deterministic sync only (Fig. 6 left bar)
    FastTrack,    ///< full precise baseline detector
    TsanLite,     ///< imprecise baseline detector
    Trace,        ///< record a Trace for the hardware simulator
};

const char *backendKindName(BackendKind kind);

/** Full description of one run. */
struct RunSpec
{
    std::string workload;
    WorkloadParams params;
    BackendKind backend = BackendKind::Clean;
    /** Knobs for the Clean backends (epoch width, vectorization,
     *  atomicity, shadow kind). detection/deterministic are derived from
     *  `backend` and ignored here. */
    RuntimeConfig runtime;
    /** Record this run's trace to the given path (ISSUE 6); empty
     *  disables recording. Clean backends with deterministic sync only. */
    std::string recordPath;
    /** Replay the run from the given trace; empty disables replay.
     *  Build the spec from the trace's own header (specFromTraceMeta) —
     *  any configuration difference is a ConfigMismatch trace fault. */
    std::string replayPath;
};

/** Everything measured in one run. */
struct RunResult
{
    double seconds = 0;
    /** Process CPU seconds over the same span (-1 where unsupported).
     *  The stable overhead numerator on noisy/oversubscribed hosts:
     *  wall time charges descheduling storms to the detector. */
    double cpuSeconds = -1;
    bool raceException = false;
    std::string raceMessage;
    /** Races recorded (can exceed 1 under OnRacePolicy::Report/Count). */
    std::uint64_t raceCount = 0;
    /** A watchdog converted a stuck wait into a DeadlockError. */
    bool deadlock = false;
    std::string deadlockMessage;
    /** CleanRuntime::failureReportJson() (empty for plain backends). */
    std::string failureReport;
    /** CleanRuntime::obsTraceJson() — Chrome trace-event JSON of the
     *  flight-recorder stream (empty unless runtime.obs.enabled). */
    std::string obsTraceJson;
    /** CleanRuntime::metricsJson() (empty unless runtime.obs.enabled). */
    std::string metricsJson;

    /** A replay fault was latched mid-run (divergence / truncation):
     *  the run aborted and maps to ExitCode::TraceError. Faults raised
     *  before the run starts (bad file, config mismatch) throw
     *  TraceError out of runWorkload instead. */
    bool traceFault = false;
    std::string traceFaultKind;
    std::string traceFaultMessage;
    std::uint64_t traceFaultStep = TraceError::kNoStep;

    std::uint64_t outputHash = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t bytes = 0;

    // Clean backends
    CheckerStats checker;
    std::vector<det::DetCount> detCounts;
    std::uint64_t rollovers = 0;

    // Recovery (OnRacePolicy::Recover); see recover::RecoveryStats.
    std::uint64_t recoveredRaces = 0;
    std::uint64_t recoveryAttempts = 0;
    std::uint64_t forcedReplays = 0;
    std::uint64_t recoveredKills = 0;
    /** Sites that exhausted maxRecoveries and degraded to Report. */
    std::uint64_t quarantinedSites = 0;

    // Sampling governor (--overhead-budget; see DESIGN.md §15).
    /** True when the run executed with the sampling tier active. */
    bool samplingOn = false;
    /** Final adopted admission level (0 = admit everything). */
    std::uint32_t sampleLevel = 0;
    /** Governor's measured controllable-overhead estimate in permille;
     *  -1 until both EWMAs have data (physical — NOT part of the
     *  deterministic report/metrics contract; human output only). */
    std::int64_t sampleOverheadPermille = -1;
    /** Aggregated deterministic gate telemetry. */
    SampleTelemetry sampleTelemetry;

    // Detector backends
    std::size_t detectorReports = 0;
    std::size_t detectorWaw = 0;
    std::size_t detectorRaw = 0;
    std::size_t detectorWar = 0;

    // Trace backend
    Trace trace;

    /** The §6.2.2 determinism fingerprint: a run is deterministic iff
     *  this triple is identical across repetitions. */
    struct Fingerprint
    {
        std::uint64_t outputHash;
        std::uint64_t accesses;
        std::vector<det::DetCount> detCounts;

        bool
        operator==(const Fingerprint &o) const
        {
            return outputHash == o.outputHash && accesses == o.accesses &&
                   detCounts == o.detCounts;
        }
    };

    Fingerprint
    fingerprint() const
    {
        return {outputHash, reads + writes, detCounts};
    }
};

/** Executes @p spec and gathers measurements. Record/replay failures
 *  detected before the run starts (unreadable trace, wrong schema
 *  version, configuration mismatch, unsupported backend) throw
 *  TraceError; mid-run replay faults land in RunResult::traceFault. */
RunResult runWorkload(const RunSpec &spec);

/** Serializes everything that shapes @p spec's deterministic execution
 *  into a trace header (record mode). */
obs::TraceMeta metaForSpec(const RunSpec &spec);

/** Rebuilds a runnable spec from a trace header (replay mode). Throws
 *  TraceError(BadMeta) on values this binary cannot interpret (unknown
 *  workload, out-of-range enums). */
RunSpec specFromTraceMeta(const obs::TraceMeta &meta);

/** Throws TraceError(ConfigMismatch) naming the first difference when
 *  @p spec does not reproduce @p meta exactly. */
void validateReplaySpec(const RunSpec &spec, const obs::TraceMeta &meta);

} // namespace clean::wl

#endif // CLEAN_WORKLOADS_RUNNER_H
