file(REMOVE_RECURSE
  "CMakeFiles/hardware_sim.dir/hardware_sim.cpp.o"
  "CMakeFiles/hardware_sim.dir/hardware_sim.cpp.o.d"
  "hardware_sim"
  "hardware_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardware_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
