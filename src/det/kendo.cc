#include "det/kendo.h"

#include <thread>

#include "support/logging.h"

namespace clean::det
{

Kendo::Kendo(bool enabled, ThreadId maxSlots)
    : enabled_(enabled), maxSlots_(maxSlots)
{
    CLEAN_ASSERT(maxSlots > 0);
    slots_ = new Slot[maxSlots];
}

Kendo::~Kendo()
{
    delete[] slots_;
}

void
Kendo::activate(ThreadId slot, DetCount start)
{
    CLEAN_ASSERT(slot < maxSlots_);
    Slot &s = slots_[slot];
    DetCount current = s.count.load(std::memory_order_relaxed);
    if (start > current)
        s.count.store(start, std::memory_order_relaxed);
    s.status.store(Status::Active, std::memory_order_release);
}

void
Kendo::finish(ThreadId slot)
{
    slots_[slot].status.store(Status::Inactive, std::memory_order_release);
}

bool
Kendo::tryTurn(ThreadId slot)
{
    if (!enabled_)
        return true;
    const Slot &self = slots_[slot];
    const DetCount mine = self.count.load(std::memory_order_relaxed);
    for (ThreadId j = 0; j < maxSlots_; ++j) {
        if (j == slot)
            continue;
        const Slot &other = slots_[j];
        if (other.status.load(std::memory_order_acquire) != Status::Active)
            continue;
        const DetCount theirs = other.count.load(std::memory_order_relaxed);
        // Strict (count, tid) order; ties go to the smaller tid.
        if (theirs < mine || (theirs == mine && j < slot))
            return false;
    }
    return true;
}

void
Kendo::waitForTurn(ThreadId slot)
{
    if (!enabled_)
        return;
    std::uint64_t localSpins = 0;
    while (!tryTurn(slot)) {
        // This host may have fewer cores than simulated threads; yield
        // so the thread we are waiting on can actually run.
        ++localSpins;
        std::this_thread::yield();
    }
    spins_.fetch_add(localSpins, std::memory_order_relaxed);
}

void
Kendo::block(ThreadId slot)
{
    if (!enabled_)
        return;
    slots_[slot].status.store(Status::Blocked, std::memory_order_release);
}

void
Kendo::unblock(ThreadId slot, DetCount resumeAt)
{
    if (!enabled_)
        return;
    Slot &s = slots_[slot];
    CLEAN_ASSERT(s.status.load() == Status::Blocked,
                 "unblock of non-blocked slot %u", slot);
    const DetCount current = s.count.load(std::memory_order_relaxed);
    if (resumeAt > current)
        s.count.store(resumeAt, std::memory_order_relaxed);
    s.status.store(Status::Active, std::memory_order_release);
}

void
Kendo::waitWhileBlocked(ThreadId slot)
{
    if (!enabled_)
        return;
    const Slot &s = slots_[slot];
    while (s.status.load(std::memory_order_acquire) == Status::Blocked)
        std::this_thread::yield();
}

bool
Kendo::isActive(ThreadId slot) const
{
    return slots_[slot].status.load(std::memory_order_acquire) ==
           Status::Active;
}

} // namespace clean::det
