#!/usr/bin/env python3
"""Perf-regression gate for the checker micro-benchmarks.

Compares a google-benchmark JSON result (produced with
``--benchmark_repetitions=N --benchmark_report_aggregates_only=true``)
against a committed baseline and fails (exit 1) if any gated
benchmark's median regresses by more than the threshold (default 25%).

Two gates, selected with ``--gate``:

``microcheck`` (default, baseline ``bench/baseline_microcheck.json``,
result from ``bench_micro_check``) covers the inline per-access fast
paths:

  * BM_ReadCheckSameEpoch8B / BM_WriteCheckSameEpoch8B — the
    ownership-cache hit path (owned-line re-access, the common case);
  * BM_ReadCheckSameEpoch8B_NoOwnCache /
    BM_WriteCheckSameEpoch8B_NoOwnCache — the same-epoch shadow fast
    path with the cache ablated (`--no-own-cache`, and the path every
    first touch of a line takes);
  * BM_ReadCheckOwnedMiss8B — the cache's conflict-miss path
    (direct-mapped eviction + re-claim on every access);
  * BM_WriteCheckFlushStorm8B — a generation flush before every
    access (the pathological sync-per-access workload).

``slo`` (baseline ``bench/baseline_slo.json``, result from
``bench_micro_check`` with ``--benchmark_filter=Slo``) covers the
sampling tier's SLO lanes (DESIGN.md §15): per-shape Floor (gate live,
every read shed — the governor's calibration denominator), Budget10
(the admission level a 10% governor converges to on that shape) and
Full lanes, on a cache-resident stream and a conflict-heavy stride.
Besides the usual regression comparison it enforces the overhead SLO as
intra-result ratios: each Budget10 lane must stay within 1.12x of its
Floor lane — a 10% budget may cost at most 12% measured overhead.

``batch`` (baseline ``bench/baseline_batch.json``, result from
``bench_batch``) covers the batched SFR-boundary read path:

  * BM_StreamRead8B_Batch/262144 — streaming append + drain with the
    shadow working set cache-resident (must stay at or below the
    ownership-cache hit lane);
  * BM_StreamRead8B_Batch/1048576 — the same with the drain walking
    shadow out of L3 (bandwidth-bound regime);
  * BM_ReadOwnCacheHit8B — the inline hit lane measured in the same
    binary, the comparison's denominator;
  * BM_BatchDrainThroughput/65536 — wide-scan walk rate at the
    default batch-bytes window;
  * BM_ScatterRead8B_Batch — the non-coalescable worst case (one run
    table entry per access).

``scale`` (baseline ``bench/baseline_scale.json``, result from
``bench_scale`` filtered to the 4-thread smoke) covers the many-core
metadata path (DESIGN.md §16): the lock-free chunk index's streaming /
striding / conflict kernels, the in-bench mutex-shard ablation the
lock-free claim is measured against, and the full batched-checker
streaming lane over one shared shadow. The gate compares per-access ns
(google-benchmark per-iteration real time), never wall time.

Medians are compared rather than means because CI runners are noisy
and a single descheduled repetition should not trip the gate.

Every comparison also checks host context: the gated benchmarks are
contention-sensitive, so a result captured on a different CPU count
than its baseline (``context.num_cpus`` in the google-benchmark JSON)
prints a non-fatal warning — the numbers still gate, but the mismatch
is visible in the CI log instead of silently distorting the margin.

Artifact paths resolve with a fallback: a ``--baseline``/``--result``
path that does not exist as given is retried under ``bench/`` and at
the repo root (committed ``BENCH_*.json`` artifacts live at the root,
``baseline_*.json`` files in ``bench/`` — callers shouldn't need to
care which).

Usage:
  python3 bench/check_perf.py --baseline bench/baseline_microcheck.json \
      --result build/bench_result.json [--threshold 0.25] [--gate batch]

Stdlib only; no third-party imports.
"""

import argparse
import json
import os
import sys

GATES = {
    "microcheck": (
        "BM_ReadCheckSameEpoch8B",
        "BM_WriteCheckSameEpoch8B",
        "BM_ReadCheckSameEpoch8B_NoOwnCache",
        "BM_WriteCheckSameEpoch8B_NoOwnCache",
        "BM_ReadCheckOwnedMiss8B",
        "BM_WriteCheckFlushStorm8B",
    ),
    "batch": (
        "BM_StreamRead8B_Batch/262144",
        "BM_StreamRead8B_Batch/1048576",
        "BM_ReadOwnCacheHit8B",
        "BM_BatchDrainThroughput/65536",
        "BM_ScatterRead8B_Batch",
    ),
    "slo": (
        "BM_SloStreamRead8B_Floor",
        "BM_SloStreamRead8B_Budget10",
        "BM_SloStreamRead8B_Full",
        "BM_SloStrideRead8B_Floor",
        "BM_SloStrideRead8B_Budget10",
        "BM_SloStrideRead8B_Full",
    ),
    "scale": (
        "BM_IndexStreamLockFree/real_time/threads:4",
        "BM_IndexStrideLockFree/real_time/threads:4",
        "BM_IndexConflictLockFree/real_time/threads:4",
        "BM_IndexConflictMutexShard/real_time/threads:4",
        "BM_CheckerStreamBatch/real_time/threads:4",
    ),
}

# Intra-result ratio limits enforced on top of the regression check:
# (numerator, denominator, max ratio). The slo pair pins the overhead
# SLO itself — a 10%-budget steady state must cost <= 12% over the
# all-shed floor on both the streaming and conflict-heavy shapes.
RATIOS = {
    "slo": (
        ("BM_SloStreamRead8B_Budget10", "BM_SloStreamRead8B_Floor", 1.12),
        ("BM_SloStrideRead8B_Budget10", "BM_SloStrideRead8B_Floor", 1.12),
    ),
}

# Backwards-compatible alias (the unit tests and older callers import
# the default gate's tuple under its original name).
GATED = GATES["microcheck"]


def resolve_artifact(path):
    """Resolve a baseline/result path with the bench/ and repo-root
    fallback. Returns the first existing candidate; the original path
    unchanged (so the open() error names what the caller asked for)
    when none exists."""
    if os.path.exists(path):
        return path
    bench_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(bench_dir)
    base = os.path.basename(path)
    for candidate in (os.path.join(bench_dir, base),
                      os.path.join(repo_root, base)):
        if os.path.exists(candidate):
            return candidate
    return path


def load_medians(path, field="real_time"):
    """Map benchmark base name -> median time in ns.

    ``field`` selects the timing column: ``real_time`` (default, what
    the regression gate compares) or ``cpu_time`` (what the slo ratio
    gate compares — wall medians on shared CI runners carry descheduling
    noise that has nothing to do with the detector's added compute).
    """
    with open(path) as f:
        doc = json.load(f)
    medians = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows are named "<name>_median" with run_type
        # "aggregate"; plain repetition rows are skipped.
        if bench.get("aggregate_name") != "median":
            continue
        base = bench.get("run_name", bench["name"].rsplit("_", 1)[0])
        # run_name may carry "/repeats:N"-style decorations (any
        # "key:value" path component); strip only those. Arg suffixes
        # ("BM_X/64" vs "BM_X/4096") are distinct benchmarks and must
        # stay distinct keys — collapsing them made the gate silently
        # compare whichever arg variant came last. "threads:N" is an
        # arg, not a decoration: thread counts are distinct benchmarks
        # in the scale sweep and must stay distinct keys.
        base = "/".join(p for p in base.split("/")
                        if ":" not in p or p.startswith("threads:"))
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        if base in medians:
            raise SystemExit(
                f"check_perf: duplicate benchmark key '{base}' in {path} "
                "(two result rows collapsed to one gate key)")
        medians[base] = bench[field] * scale
    return medians


def load_host_context(path):
    """Host context of a google-benchmark JSON result: num_cpus,
    mhz_per_cpu and host_name (any of them None when the file predates
    context capture)."""
    with open(path) as f:
        doc = json.load(f)
    ctx = doc.get("context", {})
    return {
        "num_cpus": ctx.get("num_cpus"),
        "mhz_per_cpu": ctx.get("mhz_per_cpu"),
        "host_name": ctx.get("host_name"),
    }


def context_warnings(baseline_ctx, result_ctx):
    """Non-fatal host-context mismatch messages (list of strings).

    Only num_cpus warns: the gated lanes are contention-sensitive, and
    a baseline captured on a 1-CPU VM says nothing about a 4-CPU
    runner's margins (and vice versa). Frequency and host name are
    reported inside the message as context, not warned on — they vary
    across perfectly comparable runners.
    """
    base_cpus = baseline_ctx.get("num_cpus")
    now_cpus = result_ctx.get("num_cpus")
    if base_cpus is None or now_cpus is None or base_cpus == now_cpus:
        return []
    return [
        f"WARN host context: result ran on {now_cpus} CPUs "
        f"(host {result_ctx.get('host_name') or '?'}) but the baseline "
        f"was captured on {base_cpus} "
        f"(host {baseline_ctx.get('host_name') or '?'}); "
        "contention-sensitive medians are not comparable at face "
        "value — consider refreshing the baseline on this runner class."
    ]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--result", required=True)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional regression")
    parser.add_argument("--gate", choices=sorted(GATES), default="microcheck",
                        help="which gated benchmark set to compare")
    args = parser.parse_args()

    baseline_path = resolve_artifact(args.baseline)
    result_path = resolve_artifact(args.result)
    baseline = load_medians(baseline_path)
    result = load_medians(result_path)

    # Host-context check (non-fatal, satellite of the scale sweep):
    # surfaced before the per-lane lines so CI logs lead with it.
    for warning in context_warnings(load_host_context(baseline_path),
                                    load_host_context(result_path)):
        print(warning)

    failed = False
    for name in GATES[args.gate]:
        if name not in baseline:
            print(f"FAIL {name}: missing from baseline {args.baseline}")
            failed = True
            continue
        if name not in result:
            print(f"FAIL {name}: missing from result {args.result} "
                  "(did the benchmark run with --benchmark_repetitions "
                  "and report_aggregates_only?)")
            failed = True
            continue
        base = baseline[name]
        now = result[name]
        delta = (now - base) / base
        status = "FAIL" if delta > args.threshold else "ok"
        print(f"{status:4s} {name}: baseline {base:.3f} ns, "
              f"now {now:.3f} ns ({delta:+.1%}, "
              f"limit +{args.threshold:.0%})")
        if delta > args.threshold:
            failed = True

    # Ratio gates: absolute SLO limits within the result itself, so a
    # baseline refresh can never quietly raise the contract's ceiling.
    # Compared on cpu_time (see load_medians).
    cpu = (load_medians(result_path, field="cpu_time")
           if RATIOS.get(args.gate) else {})
    for num, den, limit in RATIOS.get(args.gate, ()):
        if num not in cpu or den not in cpu:
            print(f"FAIL {num}/{den}: lane missing from result "
                  f"{result_path}")
            failed = True
            continue
        ratio = cpu[num] / cpu[den]
        status = "FAIL" if ratio > limit else "ok"
        print(f"{status:4s} {num} / {den}: "
              f"{ratio:.3f}x (limit {limit:.2f}x)")
        if ratio > limit:
            failed = True

    if failed:
        print()
        print(f"Gated '{args.gate}' benchmark medians regressed past "
              "the limit.")
        print("If this slowdown is intentional (e.g. the check itself "
              f"changed), apply the 'perf-override' label to the PR and "
              f"update {args.baseline} in the same change.")
        return 1
    print(f"perf gate ({args.gate}): all gated benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
