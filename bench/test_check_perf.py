#!/usr/bin/env python3
"""Unit tests for check_perf.py's benchmark-keying logic.

Regression cover for the load_medians bug where `base.split("/")[0]`
collapsed arg-suffixed benchmarks ("BM_X/64" vs "BM_X/4096") into one
key, so the gate silently compared the wrong median.

Stdlib only; run directly (``python3 bench/test_check_perf.py``) or via
ctest (registered as ``check_perf_unit``).
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from check_perf import (GATED, GATES, RATIOS, context_warnings,
                        load_host_context, load_medians,
                        resolve_artifact)


def write_result(rows):
    """Write a minimal google-benchmark aggregate JSON; return its path."""
    fd, path = tempfile.mkstemp(suffix=".json")
    with os.fdopen(fd, "w") as f:
        json.dump({"benchmarks": rows}, f)
    return path


def median_row(run_name, real_time, unit="ns", cpu_time=None):
    return {
        "name": run_name + "_median",
        "run_name": run_name,
        "run_type": "aggregate",
        "aggregate_name": "median",
        "real_time": real_time,
        "cpu_time": real_time if cpu_time is None else cpu_time,
        "time_unit": unit,
    }


class LoadMediansTest(unittest.TestCase):
    def load(self, rows):
        path = write_result(rows)
        try:
            return load_medians(path)
        finally:
            os.unlink(path)

    def test_arg_suffixed_benchmarks_stay_distinct(self):
        medians = self.load([
            median_row("BM_X/64", 1.0),
            median_row("BM_X/4096", 9.0),
        ])
        self.assertEqual(medians, {"BM_X/64": 1.0, "BM_X/4096": 9.0})

    def test_repeats_decoration_is_stripped(self):
        medians = self.load([
            median_row("BM_X/64/repeats:10", 2.5),
            median_row("BM_Plain/repeats:10", 1.5),
        ])
        self.assertEqual(medians, {"BM_X/64": 2.5, "BM_Plain": 1.5})

    def test_colon_decorations_are_stripped_generally(self):
        # repeats:N is a decoration; threads:N is an argument (the
        # scale sweep's thread counts are distinct benchmarks) and
        # must survive as part of the key.
        medians = self.load([
            median_row("BM_X/8/threads:4/repeats:10", 3.0),
        ])
        self.assertEqual(medians, {"BM_X/8/threads:4": 3.0})

    def test_thread_counts_stay_distinct_keys(self):
        medians = self.load([
            median_row("BM_Scale/real_time/threads:4", 2.0),
            median_row("BM_Scale/real_time/threads:16", 7.0),
        ])
        self.assertEqual(medians, {
            "BM_Scale/real_time/threads:4": 2.0,
            "BM_Scale/real_time/threads:16": 7.0,
        })

    def test_key_collision_is_an_error(self):
        rows = [
            median_row("BM_X/64/repeats:10", 1.0),
            median_row("BM_X/64/repeats:20", 2.0),
        ]
        with self.assertRaises(SystemExit):
            self.load(rows)

    def test_non_median_aggregates_are_skipped(self):
        medians = self.load([
            median_row("BM_X", 1.0),
            {
                "name": "BM_X_mean",
                "run_name": "BM_X",
                "run_type": "aggregate",
                "aggregate_name": "mean",
                "real_time": 99.0,
                "time_unit": "ns",
            },
        ])
        self.assertEqual(medians, {"BM_X": 1.0})

    def test_time_units_normalize_to_ns(self):
        medians = self.load([median_row("BM_Us", 2.0, unit="us")])
        self.assertEqual(medians, {"BM_Us": 2000.0})

    def test_cpu_time_field_selector(self):
        path = write_result([median_row("BM_X", 5.0, cpu_time=3.0)])
        try:
            self.assertEqual(load_medians(path), {"BM_X": 5.0})
            self.assertEqual(load_medians(path, field="cpu_time"),
                             {"BM_X": 3.0})
        finally:
            os.unlink(path)


class GatesTest(unittest.TestCase):
    def test_legacy_alias_is_the_default_gate(self):
        self.assertEqual(GATED, GATES["microcheck"])

    def test_gate_names_are_unique_within_each_gate(self):
        for gate, names in GATES.items():
            self.assertEqual(len(names), len(set(names)), gate)

    def test_ratio_lanes_are_regression_gated_too(self):
        # Every lane a ratio references must also be in the gate's
        # regression set, or a renamed benchmark could silently drop
        # the SLO check while the regression half still passes.
        for gate, ratios in RATIOS.items():
            for num, den, limit in ratios:
                self.assertIn(num, GATES[gate])
                self.assertIn(den, GATES[gate])
                self.assertGreater(limit, 1.0)

    def test_slo_gate_pins_the_twelve_percent_ceiling(self):
        limits = {limit for _, _, limit in RATIOS["slo"]}
        self.assertEqual(limits, {1.12})


class HostContextTest(unittest.TestCase):
    """The num_cpus mismatch warning (non-fatal, scale satellite)."""

    @staticmethod
    def write_doc(context):
        fd, path = tempfile.mkstemp(suffix=".json")
        with os.fdopen(fd, "w") as f:
            json.dump({"context": context, "benchmarks": []}, f)
        return path

    def test_context_fields_are_extracted(self):
        path = self.write_doc({"num_cpus": 4, "mhz_per_cpu": 2100,
                               "host_name": "runner-1"})
        try:
            self.assertEqual(load_host_context(path), {
                "num_cpus": 4, "mhz_per_cpu": 2100,
                "host_name": "runner-1"})
        finally:
            os.unlink(path)

    def test_missing_context_yields_nones(self):
        path = write_result([])
        try:
            self.assertEqual(load_host_context(path), {
                "num_cpus": None, "mhz_per_cpu": None,
                "host_name": None})
        finally:
            os.unlink(path)

    def test_cpu_count_mismatch_warns(self):
        warnings = context_warnings(
            {"num_cpus": 1, "host_name": "vm-1", "mhz_per_cpu": 2100},
            {"num_cpus": 4, "host_name": "runner-9", "mhz_per_cpu": 3000})
        self.assertEqual(len(warnings), 1)
        self.assertIn("4 CPUs", warnings[0])
        self.assertIn("on 1", warnings[0])
        self.assertIn("runner-9", warnings[0])
        self.assertTrue(warnings[0].startswith("WARN"))

    def test_matching_cpu_count_is_silent(self):
        self.assertEqual(
            context_warnings({"num_cpus": 4}, {"num_cpus": 4}), [])

    def test_unknown_cpu_count_is_silent(self):
        # Baselines predating context capture must not spam CI.
        self.assertEqual(
            context_warnings({"num_cpus": None}, {"num_cpus": 4}), [])
        self.assertEqual(
            context_warnings({"num_cpus": 1}, {"num_cpus": None}), [])

    def test_frequency_alone_never_warns(self):
        self.assertEqual(
            context_warnings({"num_cpus": 2, "mhz_per_cpu": 2100},
                             {"num_cpus": 2, "mhz_per_cpu": 3600}), [])


class ResolveArtifactTest(unittest.TestCase):
    """The bench/ + repo-root fallback for BENCH_*/baseline_* paths."""

    bench_dir = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(bench_dir)

    def test_existing_path_wins_verbatim(self):
        fd, path = tempfile.mkstemp(suffix=".json")
        os.close(fd)
        try:
            self.assertEqual(resolve_artifact(path), path)
        finally:
            os.unlink(path)

    def test_missing_path_falls_back_to_bench_dir(self):
        # baseline_microcheck.json lives in bench/; asking for it by a
        # bogus directory must still find the committed copy.
        asked = os.path.join("no", "such", "dir",
                             "baseline_microcheck.json")
        self.assertEqual(
            resolve_artifact(asked),
            os.path.join(self.bench_dir, "baseline_microcheck.json"))

    def test_missing_path_falls_back_to_repo_root(self):
        # Committed BENCH_*.json artifacts live at the repo root.
        asked = os.path.join("elsewhere", "BENCH_replay.json")
        self.assertEqual(
            resolve_artifact(asked),
            os.path.join(self.repo_root, "BENCH_replay.json"))

    def test_unresolvable_path_is_returned_unchanged(self):
        asked = os.path.join("nope", "definitely_not_a_real_file.json")
        self.assertEqual(resolve_artifact(asked), asked)


if __name__ == "__main__":
    unittest.main()
