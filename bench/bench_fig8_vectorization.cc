/**
 * @file
 * Figure 8 — the impact of the §4.4 multi-byte (vectorized) check.
 *
 * Runs race detection (no det-sync) with the vectorized multi-byte fast
 * path on and off, and also reports the two measured quantities the
 * optimization rests on:
 *   - the fraction of shared accesses >= 4 bytes wide (paper: >= 91.9%
 *     on average), and
 *   - the fraction of wide accesses whose bytes all carry one epoch
 *     (paper: >= 99.7% in every benchmark).
 */

#include "bench/common.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    const BenchConfig config = parseBench(argc, argv, "small");

    std::printf("=== Figure 8: impact of vectorization "
                "(threads=%u, scale=%s) ===\n\n",
                config.threads,
                config.options.getString("scale", "small").c_str());
    std::printf("%-14s %12s %12s %9s %8s %10s\n", "benchmark",
                "novec[s]", "vec[s]", "speedup", "wide%", "same-ep%");

    std::vector<double> speedups, widePct, samePct;
    for (const auto &name : config.workloads) {
        auto vecSpec = baseSpec(config, name, BackendKind::DetectOnly);
        auto novecSpec = vecSpec;
        novecSpec.runtime.vectorized = false;

        const double novec = timedSeconds(novecSpec, config.repeats);
        const double vec = timedSeconds(vecSpec, config.repeats);
        // One more run to collect the width statistics.
        const auto result = runWorkload(vecSpec);
        const auto &st = result.checker;
        const double wide =
            st.accesses()
                ? 100.0 * static_cast<double>(st.wideAccesses) /
                      static_cast<double>(st.accesses())
                : 0.0;
        const double same =
            st.wideAccesses
                ? 100.0 * static_cast<double>(st.wideSameEpoch) /
                      static_cast<double>(st.wideAccesses)
                : 0.0;
        if (novec <= 0 || vec <= 0) {
            std::printf("%-14s %12s\n", name.c_str(), "FAILED");
            continue;
        }
        speedups.push_back(novec / vec);
        widePct.push_back(wide);
        samePct.push_back(same);
        std::printf("%-14s %12.4f %12.4f %8.2fx %7.1f%% %9.2f%%\n",
                    name.c_str(), novec, vec, novec / vec, wide, same);
    }

    std::printf("\n%-14s %12s %12s %8.2fx %7.1f%% %9.2f%%   (mean)\n",
                "all", "", "", geomean(speedups), mean(widePct),
                mean(samePct));
    std::printf("\npaper: vectorization is a consistent win because >= "
                "91.9%% of shared accesses are\nwide and >= 99.7%% of "
                "them carry a single epoch.\n");
    return 0;
}
