# Empty dependencies file for bench_ablation_detchunk.
# This may be replaced when dependencies are built.
