# Empty dependencies file for clean_support.
# This may be replaced when dependencies are built.
