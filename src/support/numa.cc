#include "support/numa.h"

#include <cstring>
#include <new>

#if defined(CLEAN_HAVE_NUMA)
#include <numa.h>
#include <sched.h>
#endif

namespace clean::numa
{

namespace
{

#if defined(CLEAN_HAVE_NUMA)
bool
numaUsable()
{
    static const bool usable = ::numa_available() >= 0;
    return usable;
}
#endif

constexpr std::size_t kAlign = 64;

} // namespace

bool
available()
{
#if defined(CLEAN_HAVE_NUMA)
    return numaUsable() && ::numa_num_configured_nodes() > 1;
#else
    return false;
#endif
}

int
nodeCount()
{
#if defined(CLEAN_HAVE_NUMA)
    if (numaUsable())
        return ::numa_num_configured_nodes();
#endif
    return 1;
}

int
currentNode()
{
#if defined(CLEAN_HAVE_NUMA)
    if (numaUsable()) {
        const int cpu = ::sched_getcpu();
        if (cpu >= 0)
            return ::numa_node_of_cpu(cpu);
    }
#endif
    return 0;
}

void *
allocLocal(std::size_t bytes)
{
#if defined(CLEAN_HAVE_NUMA)
    if (numaUsable()) {
        // Kernel-placed on the calling thread's node; pages come back
        // zeroed (fresh anonymous mmap). Never mixed with the fallback
        // allocator so deallocate() can route by numaUsable() alone.
        void *ptr = ::numa_alloc_local(bytes);
        if (!ptr)
            throw std::bad_alloc();
        return ptr;
    }
#endif
    void *ptr = ::operator new(bytes, std::align_val_t{kAlign});
    // The caller's memset is the first touch: Linux's default policy
    // faults each page onto the toucher's node.
    std::memset(ptr, 0, bytes);
    return ptr;
}

void
deallocate(void *ptr, std::size_t bytes) noexcept
{
    if (!ptr)
        return;
#if defined(CLEAN_HAVE_NUMA)
    if (numaUsable()) {
        ::numa_free(ptr, bytes);
        return;
    }
#endif
    (void)bytes;
    ::operator delete(ptr, std::align_val_t{kAlign});
}

} // namespace clean::numa
