file(REMOVE_RECURSE
  "libclean_det.a"
)
