/**
 * @file
 * radiosity — task-queue-driven hierarchical radiosity (SPLASH-2).
 *
 * The defining trait of SPLASH radiosity is an enormous synchronization
 * rate: work is a soup of small patch-interaction tasks flowing through
 * shared task queues, so threads take and release queue locks
 * constantly. That makes it the paper's top clock-rollover benchmark
 * (Table 1: 31 rollovers/second) — every lock operation ticks vector
 * clocks.
 *
 * Model: patches with radiosity values; a work list of (src, dst)
 * interactions distributed through per-thread deques with lock-protected
 * stealing; energy transfer updates dst patches under per-patch locks;
 * tasks spawn refinement tasks until an energy threshold.
 *
 * Racy variant: the per-patch energy update skips the patch lock (WAW).
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

struct Task
{
    std::uint32_t src;
    std::uint32_t dst;
    std::uint32_t depth;
    std::uint32_t pad;
};

class Radiosity : public KernelBase
{
  public:
    Radiosity() : KernelBase("radiosity", "splash2", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nPatches = scaled(p.scale, 64, 160, 512);
        const std::uint64_t seedTasks = scaled(p.scale, 256, 1024, 4096);
        const std::uint32_t maxDepth = 3;
        const std::uint64_t queueCap = seedTasks * 8;

        auto *radiosityVal = env.allocShared<double>(nPatches);
        auto *formFactor = env.allocShared<double>(nPatches);
        // Per-thread deques in shared memory: head/tail + storage.
        const unsigned q = p.threads;
        auto *qHead = env.allocShared<std::uint64_t>(q);
        auto *qTail = env.allocShared<std::uint64_t>(q);
        auto *qData = env.allocShared<Task>(q * queueCap);
        auto *pending = env.allocShared<std::int64_t>(1);
        // Global energy statistic, folded in once per worker at exit.
        // In the racy variant this final unlocked RMW is each worker's
        // last action — never covered by any later release, so the WAW
        // between workers exists in *every* schedule.
        auto *energyStat = env.allocShared<double>(1);

        std::vector<unsigned> queueLocks, patchLocks;
        for (unsigned i = 0; i < q; ++i)
            queueLocks.push_back(env.createMutex());
        for (std::uint64_t i = 0; i < std::min<std::uint64_t>(nPatches, 64);
             ++i) {
            patchLocks.push_back(env.createMutex());
        }
        const unsigned pendingLock = env.createMutex();

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < nPatches; ++i) {
                radiosityVal[i] = init.nextDouble();
                formFactor[i] = 0.05 + 0.4 * init.nextDouble();
            }
            // Seed tasks round-robin into the queues.
            for (unsigned i = 0; i < q; ++i)
                qHead[i] = qTail[i] = 0;
            for (std::uint64_t t = 0; t < seedTasks; ++t) {
                const unsigned owner = t % q;
                Task &slot = qData[owner * queueCap + qTail[owner]++];
                slot.src = static_cast<std::uint32_t>(
                    init.nextBelow(nPatches));
                slot.dst = static_cast<std::uint32_t>(
                    init.nextBelow(nPatches));
                slot.depth = 0;
            }
            pending[0] = static_cast<std::int64_t>(seedTasks);
            energyStat[0] = 0.0;
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            const unsigned self = w.index();
            auto patchLock = [&](std::uint32_t patch) {
                return patchLocks[patch % patchLocks.size()];
            };

            auto tryPop = [&](unsigned victim, Task &out) -> bool {
                w.lock(queueLocks[victim]);
                const std::uint64_t head = w.read(&qHead[victim]);
                const std::uint64_t tail = w.read(&qTail[victim]);
                bool ok = head < tail;
                if (ok) {
                    const Task *slot =
                        &qData[victim * queueCap + head];
                    out.src = w.read(&slot->src);
                    out.dst = w.read(&slot->dst);
                    out.depth = w.read(&slot->depth);
                    w.write(&qHead[victim], head + 1);
                }
                w.unlock(queueLocks[victim]);
                return ok;
            };
            auto push = [&](const Task &task) {
                w.lock(queueLocks[self]);
                const std::uint64_t tail = w.read(&qTail[self]);
                if (tail < queueCap) {
                    Task *slot = &qData[self * queueCap + tail];
                    w.write(&slot->src, task.src);
                    w.write(&slot->dst, task.dst);
                    w.write(&slot->depth, task.depth);
                    w.write(&qTail[self], tail + 1);
                    w.unlock(queueLocks[self]);
                    // The racy variant maintains the outstanding-task
                    // counter without its lock (radiosity's real races
                    // include exactly such task-count bookkeeping).
                    if (racy) {
                        w.update(&pending[0],
                                 [](std::int64_t v) { return v + 1; });
                    } else {
                        w.lock(pendingLock);
                        w.update(&pending[0],
                                 [](std::int64_t v) { return v + 1; });
                        w.unlock(pendingLock);
                    }
                    return;
                }
                w.unlock(queueLocks[self]);
            };

            unsigned fruitless = 0;
            for (;;) {
                Task task;
                bool got = tryPop(self, task);
                for (unsigned v = 1; !got && v < w.count(); ++v)
                    got = tryPop((self + v) % w.count(), task);
                if (!got) {
                    std::int64_t left;
                    if (racy) {
                        left = w.read(&pending[0]);
                    } else {
                        w.lock(pendingLock);
                        left = w.read(&pending[0]);
                        w.unlock(pendingLock);
                    }
                    if (left <= 0)
                        break;
                    // The racy variant's unlocked counter can lose a
                    // decrement (that IS its race); a stuck positive
                    // count with every queue empty must not spin the
                    // workers forever.
                    if (racy && ++fruitless >= 4096)
                        break;
                    w.compute(2);
                    continue;
                }
                fruitless = 0;

                // Energy transfer src -> dst. The source brightness is
                // itself updated concurrently, so it must be read under
                // the same patch lock in the race-free variant.
                const double ff = w.read(&formFactor[task.dst]);
                double srcB;
                if (racy) {
                    srcB = w.read(&radiosityVal[task.src]);
                } else {
                    w.lock(patchLock(task.src));
                    srcB = w.read(&radiosityVal[task.src]);
                    w.unlock(patchLock(task.src));
                }
                const double delta = ff * srcB * 0.25;
                if (racy) {
                    // Unlocked accumulate: WAW on the patch radiosity.
                    w.update(&radiosityVal[task.dst],
                             [delta](double v) { return v + delta; });
                } else {
                    w.lock(patchLock(task.dst));
                    w.update(&radiosityVal[task.dst],
                             [delta](double v) { return v + delta; });
                    w.unlock(patchLock(task.dst));
                }
                w.compute(6);

                // Refine: large transfers spawn follow-up interactions.
                if (delta > 0.05 && task.depth < maxDepth) {
                    Task child;
                    child.src = task.dst;
                    child.dst = (task.src + task.dst) %
                                static_cast<std::uint32_t>(nPatches);
                    child.depth = task.depth + 1;
                    push(child);
                }

                if (racy) {
                    w.update(&pending[0],
                             [](std::int64_t v) { return v - 1; });
                } else {
                    w.lock(pendingLock);
                    w.update(&pending[0],
                             [](std::int64_t v) { return v - 1; });
                    w.unlock(pendingLock);
                }
            }
            // Fold this worker's contribution into the global energy
            // statistic (radiosity's real global counters are updated
            // exactly this way).
            if (racy) {
                w.update(&energyStat[0],
                         [](double v) { return v + 1.0; });
            } else {
                w.lock(pendingLock);
                w.update(&energyStat[0],
                         [](double v) { return v + 1.0; });
                w.unlock(pendingLock);
            }
            // Other workers may still be draining their queues, so the
            // final sample is read under the patch lock.
            const std::uint32_t samplePatch =
                static_cast<std::uint32_t>(self % nPatches);
            double sample;
            if (racy) {
                sample = w.read(&radiosityVal[samplePatch]);
            } else {
                w.lock(patchLock(samplePatch));
                sample = w.read(&radiosityVal[samplePatch]);
                w.unlock(patchLock(samplePatch));
            }
            w.sink(static_cast<std::uint64_t>(sample * 1e6));
        });

        env.declareOutput(radiosityVal, nPatches * sizeof(double));
    }
};

} // namespace

std::unique_ptr<Workload>
makeRadiosity()
{
    return std::make_unique<Radiosity>();
}

} // namespace clean::wl::suite
