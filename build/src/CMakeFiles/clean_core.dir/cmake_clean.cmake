file(REMOVE_RECURSE
  "CMakeFiles/clean_core.dir/core/linear_shadow.cc.o"
  "CMakeFiles/clean_core.dir/core/linear_shadow.cc.o.d"
  "CMakeFiles/clean_core.dir/core/race_check.cc.o"
  "CMakeFiles/clean_core.dir/core/race_check.cc.o.d"
  "CMakeFiles/clean_core.dir/core/rollover.cc.o"
  "CMakeFiles/clean_core.dir/core/rollover.cc.o.d"
  "CMakeFiles/clean_core.dir/core/runtime.cc.o"
  "CMakeFiles/clean_core.dir/core/runtime.cc.o.d"
  "CMakeFiles/clean_core.dir/core/shared_heap.cc.o"
  "CMakeFiles/clean_core.dir/core/shared_heap.cc.o.d"
  "CMakeFiles/clean_core.dir/core/sparse_shadow.cc.o"
  "CMakeFiles/clean_core.dir/core/sparse_shadow.cc.o.d"
  "CMakeFiles/clean_core.dir/core/sync_objects.cc.o"
  "CMakeFiles/clean_core.dir/core/sync_objects.cc.o.d"
  "CMakeFiles/clean_core.dir/core/vector_clock.cc.o"
  "CMakeFiles/clean_core.dir/core/vector_clock.cc.o.d"
  "libclean_core.a"
  "libclean_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clean_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
