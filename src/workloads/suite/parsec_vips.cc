/**
 * @file
 * vips — image-processing pipeline over region tasks (PARSEC).
 *
 * A chain of whole-image operations (linear transform, 3x3 convolution,
 * threshold) is applied region by region; regions are handed out from a
 * lock-protected task queue per operation, with a barrier between
 * operations (vips evaluates demand-driven regions; the task queue is
 * the shape that matters: uneven worker progress, pipeline-ish
 * imbalance for deterministic counters).
 *
 * Racy variant: the per-operation shared progress/statistics record
 * (processed-pixel count + max value) is updated without the lock —
 * WAW — the same flavor as vips' real tracked-allocation races.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Vips : public KernelBase
{
  public:
    Vips() : KernelBase("vips", "parsec", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t dim = scaled(p.scale, 64, 160, 448);
        const std::uint64_t region = 16;
        const std::uint64_t regionsPerSide = dim / region;
        const std::uint64_t nRegions = regionsPerSide * regionsPerSide;

        auto *imgA = env.allocShared<float>(dim * dim);
        auto *imgB = env.allocShared<float>(dim * dim);
        auto *taskCounter = env.allocShared<std::uint64_t>(1);
        auto *stats = env.allocShared<double>(2); // pixels, max
        const unsigned taskLock = env.createMutex();
        const unsigned statsLock = env.createMutex();
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < dim * dim; ++i)
                imgA[i] = static_cast<float>(init.nextDouble());
            taskCounter[0] = 0;
            stats[0] = stats[1] = 0.0;
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            auto nextRegion = [&]() -> std::uint64_t {
                w.lock(taskLock);
                const std::uint64_t t = w.read(&taskCounter[0]);
                w.write(&taskCounter[0], t + 1);
                w.unlock(taskLock);
                return t;
            };
            auto bumpStats = [&](double pixels, double maxv) {
                if (racy) {
                    // Unlocked statistics record: WAW.
                    w.update(&stats[0],
                             [pixels](double v) { return v + pixels; });
                    if (maxv > w.read(&stats[1]))
                        w.write(&stats[1], maxv);
                } else {
                    w.lock(statsLock);
                    w.update(&stats[0],
                             [pixels](double v) { return v + pixels; });
                    if (maxv > w.read(&stats[1]))
                        w.write(&stats[1], maxv);
                    w.unlock(statsLock);
                }
            };
            auto regionBounds = [&](std::uint64_t t, std::uint64_t &x0,
                                    std::uint64_t &y0) {
                y0 = (t / regionsPerSide) * region;
                x0 = (t % regionsPerSide) * region;
            };

            // Op 1: linear transform A -> B.
            for (;;) {
                const std::uint64_t t = nextRegion();
                if (t >= nRegions)
                    break;
                std::uint64_t x0, y0;
                regionBounds(t, x0, y0);
                double maxv = 0.0;
                for (std::uint64_t y = y0; y < y0 + region; ++y) {
                    for (std::uint64_t x = x0; x < x0 + region; ++x) {
                        const float v = w.read(&imgA[y * dim + x]);
                        const float out = 1.2f * v + 0.05f;
                        w.write(&imgB[y * dim + x], out);
                        maxv = std::max(maxv,
                                        static_cast<double>(out));
                        w.compute(3);
                    }
                }
                bumpStats(static_cast<double>(region * region), maxv);
            }
            w.barrier(phase);
            if (w.index() == 0) {
                w.lock(taskLock);
                w.write(&taskCounter[0], std::uint64_t{0});
                w.unlock(taskLock);
            }
            w.barrier(phase);

            // Op 2: 3x3 box convolution B -> A.
            for (;;) {
                const std::uint64_t t = nextRegion();
                if (t >= nRegions)
                    break;
                std::uint64_t x0, y0;
                regionBounds(t, x0, y0);
                double maxv = 0.0;
                for (std::uint64_t y = y0; y < y0 + region; ++y) {
                    for (std::uint64_t x = x0; x < x0 + region; ++x) {
                        float acc = 0.0f;
                        int count = 0;
                        for (int dy = -1; dy <= 1; ++dy) {
                            for (int dx = -1; dx <= 1; ++dx) {
                                const std::int64_t yy =
                                    static_cast<std::int64_t>(y) + dy;
                                const std::int64_t xx =
                                    static_cast<std::int64_t>(x) + dx;
                                if (yy < 0 || xx < 0 ||
                                    yy >= static_cast<std::int64_t>(dim) ||
                                    xx >= static_cast<std::int64_t>(dim)) {
                                    continue;
                                }
                                acc += w.read(&imgB[yy * dim + xx]);
                                ++count;
                            }
                        }
                        const float out = acc / count;
                        w.write(&imgA[y * dim + x], out);
                        maxv = std::max(maxv,
                                        static_cast<double>(out));
                        w.compute(12);
                    }
                }
                bumpStats(static_cast<double>(region * region), maxv);
            }
            // Per-worker completion mark on the shared statistics
            // record; unlocked in the racy variant and performed by all
            // workers inside the same barrier phase, so the WAW exists
            // in every schedule.
            bumpStats(1.0, 0.0);
            w.barrier(phase);

            w.sink(static_cast<std::uint64_t>(
                w.read(&imgA[(w.index() * 31) % (dim * dim)]) * 1e6));
        });

        env.declareOutput(imgA, dim * dim * sizeof(float));
    }
};

} // namespace

std::unique_ptr<Workload>
makeVips()
{
    return std::make_unique<Vips>();
}

} // namespace clean::wl::suite
