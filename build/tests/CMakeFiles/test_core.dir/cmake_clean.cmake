file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_epoch.cc.o"
  "CMakeFiles/test_core.dir/test_epoch.cc.o.d"
  "CMakeFiles/test_core.dir/test_race_check.cc.o"
  "CMakeFiles/test_core.dir/test_race_check.cc.o.d"
  "CMakeFiles/test_core.dir/test_shadow.cc.o"
  "CMakeFiles/test_core.dir/test_shadow.cc.o.d"
  "CMakeFiles/test_core.dir/test_shared_heap.cc.o"
  "CMakeFiles/test_core.dir/test_shared_heap.cc.o.d"
  "CMakeFiles/test_core.dir/test_vector_clock.cc.o"
  "CMakeFiles/test_core.dir/test_vector_clock.cc.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
