file(REMOVE_RECURSE
  "CMakeFiles/test_det.dir/test_kendo.cc.o"
  "CMakeFiles/test_det.dir/test_kendo.cc.o.d"
  "test_det"
  "test_det.pdb"
  "test_det[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_det.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
