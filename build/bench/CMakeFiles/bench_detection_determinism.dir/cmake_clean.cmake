file(REMOVE_RECURSE
  "CMakeFiles/bench_detection_determinism.dir/bench_detection_determinism.cc.o"
  "CMakeFiles/bench_detection_determinism.dir/bench_detection_determinism.cc.o.d"
  "bench_detection_determinism"
  "bench_detection_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
