#include "workloads/registry.h"

#include <map>
#include <memory>
#include <mutex>

#include "support/logging.h"
#include "workloads/suite/factories.h"

namespace clean::wl
{

namespace
{

using Factory = std::unique_ptr<Workload> (*)();

struct Entry
{
    const char *name;
    Factory factory;
};

// Figure order: SPLASH-2 first, then PARSEC, both alphabetical.
constexpr Entry kEntries[] = {
    {"barnes", suite::makeBarnes},
    {"cholesky", suite::makeCholesky},
    {"fft", suite::makeFft},
    {"fmm", suite::makeFmm},
    {"lu_cb", suite::makeLuCb},
    {"lu_ncb", suite::makeLuNcb},
    {"ocean_cp", suite::makeOceanCp},
    {"ocean_ncp", suite::makeOceanNcp},
    {"radiosity", suite::makeRadiosity},
    {"radix", suite::makeRadix},
    {"raytrace", suite::makeRaytrace},
    {"volrend", suite::makeVolrend},
    {"water_nsq", suite::makeWaterNsq},
    {"water_sp", suite::makeWaterSp},
    {"blackscholes", suite::makeBlackscholes},
    {"bodytrack", suite::makeBodytrack},
    {"canneal", suite::makeCanneal},
    {"dedup", suite::makeDedup},
    {"facesim", suite::makeFacesim},
    {"ferret", suite::makeFerret},
    {"fluidanimate", suite::makeFluidanimate},
    {"raytrace_p", suite::makeRaytraceP},
    {"streamcluster", suite::makeStreamcluster},
    {"swaptions", suite::makeSwaptions},
    {"vips", suite::makeVips},
    {"x264", suite::makeX264},
};

std::map<std::string, std::unique_ptr<Workload>> &
instances()
{
    static std::map<std::string, std::unique_ptr<Workload>> map = [] {
        std::map<std::string, std::unique_ptr<Workload>> m;
        for (const Entry &e : kEntries)
            m.emplace(e.name, e.factory());
        return m;
    }();
    return map;
}

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const Entry &e : kEntries)
        names.emplace_back(e.name);
    return names;
}

std::vector<std::string>
racyWorkloadNames()
{
    std::vector<std::string> names;
    for (const Entry &e : kEntries) {
        if (instances().at(e.name)->hasRacyVariant())
            names.emplace_back(e.name);
    }
    return names;
}

Workload &
findWorkload(const std::string &name)
{
    auto it = instances().find(name);
    if (it == instances().end())
        fatal("unknown workload '%s'", name.c_str());
    return *it->second;
}

} // namespace clean::wl
