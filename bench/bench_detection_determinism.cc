/**
 * @file
 * §6.2.2 — detected races and determinism.
 *
 * The paper's two validation experiments, at library scale:
 *
 *   1. the unmodified (racy) versions of the 17 racy benchmarks are run
 *      repeatedly under CLEAN: every execution must end with a race
 *      exception;
 *   2. the modified (race-free) versions of the remaining suite
 *      (canneal excluded — no manual race-free version exists) are run
 *      repeatedly: no execution throws, and the determinism fingerprint
 *      (program output hash, final deterministic counters, shared
 *      read/write counts) is identical across runs.
 *
 * --runs sets the repetition count (paper: 100; default here 5).
 */

#include "bench/common.h"

using namespace clean;
using namespace clean::bench;
using namespace clean::wl;

int
main(int argc, char **argv)
{
    const BenchConfig config = parseBench(argc, argv);
    const unsigned runs =
        static_cast<unsigned>(config.options.getInt("runs", 5));

    std::printf("=== §6.2.2: detection & determinism "
                "(threads=%u, scale=%s, runs=%u) ===\n\n",
                config.threads,
                config.options.getString("scale", "test").c_str(), runs);

    // Experiment 1: racy versions always throw.
    std::printf("--- racy (unmodified) benchmarks: every run must end "
                "with a race exception ---\n");
    unsigned racyOk = 0, racyTotal = 0;
    for (const auto &name : racyWorkloadNames()) {
        if (std::find(config.workloads.begin(), config.workloads.end(),
                      name) == config.workloads.end()) {
            continue;
        }
        ++racyTotal;
        unsigned exceptions = 0;
        std::string firstKind;
        for (unsigned r = 0; r < runs; ++r) {
            auto spec = baseSpec(config, name, BackendKind::Clean, true);
            spec.params.seed = 12345; // same input every run, as §6.2.2
            const auto result = runWorkload(spec);
            exceptions += result.raceException;
            if (firstKind.empty() && result.raceException)
                firstKind = result.raceMessage.substr(
                    0, result.raceMessage.find(" race"));
        }
        const bool ok = exceptions == runs;
        racyOk += ok;
        std::printf("%-14s %u/%u exceptions (%s)%s\n", name.c_str(),
                    exceptions, runs, firstKind.c_str(),
                    ok ? "" : "   <-- FAILED");
    }
    std::printf("=> %u/%u racy benchmarks always threw (paper: 17/17)\n\n",
                racyOk, racyTotal);

    // Experiment 2: race-free versions never throw, always identical.
    std::printf("--- race-free (modified) benchmarks: no exceptions, "
                "deterministic fingerprints ---\n");
    unsigned detOk = 0, detTotal = 0;
    for (const auto &name : config.workloads) {
        if (findWorkload(name).excludedFromModified()) {
            std::printf("%-14s (excluded from the modified suite, as in "
                        "the paper)\n",
                        name.c_str());
            continue;
        }
        ++detTotal;
        bool anyException = false, allSame = true;
        RunResult::Fingerprint first{};
        for (unsigned r = 0; r < runs; ++r) {
            auto spec = baseSpec(config, name, BackendKind::Clean);
            spec.params.seed = 12345;
            const auto result = runWorkload(spec);
            anyException |= result.raceException;
            if (r == 0)
                first = result.fingerprint();
            else
                allSame &= result.fingerprint() == first;
        }
        const bool ok = !anyException && allSame;
        detOk += ok;
        std::printf("%-14s exceptions:%s deterministic:%s%s\n",
                    name.c_str(), anyException ? "YES" : "no",
                    allSame ? "yes" : "NO",
                    ok ? "" : "   <-- FAILED");
    }
    std::printf("=> %u/%u race-free benchmarks deterministic with no "
                "exceptions (paper: 25/25)\n",
                detOk, detTotal);
    return racyOk == racyTotal && detOk == detTotal ? 0 : 1;
}
