/**
 * @file
 * Debugging workflow the paper motivates (§3.1.2):
 *
 *   1. run the racy program under CLEAN -> immediate race exception at
 *      the first WAW/RAW (early detection, no out-of-thin-air damage);
 *   2. re-run the same schedule under the full precise detector
 *      (FastTrack) to enumerate *all* races, including WAR;
 *   3. fix the bug (use the race-free variant) and re-run: CLEAN is
 *      silent and the result is deterministic.
 *
 * The racy program is the suite's `raytrace`, whose bug is the actual
 * SPLASH-2 raytrace defect: a global tile/RayID counter incremented
 * without the lock.
 */

#include <cstdio>
#include <map>

#include "workloads/registry.h"
#include "workloads/runner.h"

using namespace clean;
using namespace clean::wl;

namespace
{

RunSpec
makeSpec(BackendKind backend, bool racy)
{
    RunSpec spec;
    spec.workload = "raytrace";
    spec.backend = backend;
    spec.params.threads = 4;
    spec.params.scale = Scale::Test;
    spec.params.racy = racy;
    return spec;
}

} // namespace

int
main()
{
    std::printf("== Debugging a racy program with CLEAN ==\n\n");

    // Step 1: CLEAN stops the buggy build on first WAW/RAW.
    std::printf("step 1: running racy raytrace under CLEAN...\n");
    const auto cleanRun = runWorkload(makeSpec(BackendKind::Clean, true));
    if (cleanRun.raceException) {
        std::printf("  -> race exception: %s\n\n",
                    cleanRun.raceMessage.c_str());
    } else {
        std::printf("  -> unexpectedly completed!\n\n");
    }

    // Step 2: enumerate everything with the precise baseline.
    std::printf("step 2: enumerating races with FastTrack...\n");
    const auto ftRun = runWorkload(makeSpec(BackendKind::FastTrack, true));
    std::printf("  -> %zu race reports (WAW=%zu RAW=%zu WAR=%zu)\n",
                ftRun.detectorReports, ftRun.detectorWaw, ftRun.detectorRaw,
                ftRun.detectorWar);
    std::printf("     (CLEAN throws on the WAW/RAW ones; WAR races are\n"
                "      tolerated by design and cannot break SFR isolation)\n\n");

    // Step 3: the fixed build runs clean and deterministically.
    std::printf("step 3: running the fixed (locked) raytrace...\n");
    const auto fixed1 = runWorkload(makeSpec(BackendKind::Clean, false));
    const auto fixed2 = runWorkload(makeSpec(BackendKind::Clean, false));
    std::printf("  -> exceptions: %s; outputs %016llx / %016llx (%s)\n",
                fixed1.raceException ? "yes" : "no",
                static_cast<unsigned long long>(fixed1.outputHash),
                static_cast<unsigned long long>(fixed2.outputHash),
                fixed1.fingerprint() == fixed2.fingerprint()
                    ? "deterministic"
                    : "NONDETERMINISTIC");
    return 0;
}
