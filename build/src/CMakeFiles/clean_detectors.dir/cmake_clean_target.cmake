file(REMOVE_RECURSE
  "libclean_detectors.a"
)
