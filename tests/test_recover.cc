/**
 * @file
 * Recovery subsystem tests (ISSUE 3): SfrLog mechanics, the determinism
 * property — under OnRacePolicy::Recover an injected metadata race rolls
 * back and replays to the exact race-free result, with identical episode
 * counts on every re-run of a seed — plus kill-fault supervision and
 * per-site quarantine.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/clean.h"
#include "recover/recovery.h"
#include "recover/undo_log.h"
#include "support/exit_codes.h"
#include "workloads/runner.h"

namespace clean
{
namespace
{

TEST(SfrLog, AppendRecordsUntilBeginSfrClears)
{
    recover::SfrLog log(8);
    EXPECT_EQ(log.size(), 0u);
    recover::SfrLog::Entry *e = log.append();
    ASSERT_NE(e, nullptr);
    e->addr = 0x1000;
    e->size = 4;
    e->isWrite = true;
    EXPECT_EQ(log.size(), 1u);
    EXPECT_EQ(log.at(0).addr, 0x1000u);
    log.beginSfr();
    EXPECT_EQ(log.size(), 0u);
    EXPECT_FALSE(log.poisoned());
}

TEST(SfrLog, OverflowPoisonsAndBeginSfrHeals)
{
    recover::SfrLog log(2);
    EXPECT_NE(log.append(), nullptr);
    EXPECT_NE(log.append(), nullptr);
    EXPECT_EQ(log.append(), nullptr); // past the cap
    EXPECT_TRUE(log.poisoned());
    EXPECT_EQ(log.append(), nullptr); // stays poisoned
    log.beginSfr();
    EXPECT_FALSE(log.poisoned());
    EXPECT_NE(log.append(), nullptr);
}

TEST(SfrLog, ExplicitPoisonMarksSfrUnrecoverable)
{
    recover::SfrLog log(8);
    log.poison();
    EXPECT_TRUE(log.poisoned());
    EXPECT_EQ(log.append(), nullptr);
}

TEST(SfrLog, RewriteEpochsOnResetZeroesPendingRestores)
{
    recover::SfrLog log(8);
    recover::SfrLog::Entry *e = log.append();
    ASSERT_NE(e, nullptr);
    for (std::size_t i = 0; i < recover::SfrLog::kMaxAccessBytes; ++i)
        e->oldEpochs[i] = 0xdeadbeef;
    log.rewriteEpochsOnReset();
    for (std::size_t i = 0; i < recover::SfrLog::kMaxAccessBytes; ++i)
        EXPECT_EQ(log.at(0).oldEpochs[i], 0u);
}

TEST(RecoveryManager, QuarantinesASiteAfterMaxRecoveries)
{
    recover::RecoveryConfig rc;
    rc.maxRecoveries = 2;
    recover::RecoveryManager mgr(rc);
    EXPECT_TRUE(mgr.admitEpisode(0x40));
    EXPECT_TRUE(mgr.admitEpisode(0x40));
    EXPECT_FALSE(mgr.admitEpisode(0x40)); // third strike: quarantined
    EXPECT_FALSE(mgr.admitEpisode(0x40)); // and it stays out
    EXPECT_TRUE(mgr.admitEpisode(0x80));  // other sites unaffected
    const recover::RecoveryStats stats = mgr.stats();
    EXPECT_EQ(stats.episodes, 3u);
    EXPECT_EQ(stats.quarantinedSites, 1u);
    const std::vector<Addr> sites = mgr.quarantinedSites();
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0], 0x40u);
}

TEST(ExitCodes, PrecedenceIsDeadlockQuarantineRace)
{
    EXPECT_EQ(exitCodeForRun(false, false, false),
              static_cast<int>(ExitCode::Ok));
    EXPECT_EQ(exitCodeForRun(false, false, true),
              static_cast<int>(ExitCode::Race));
    EXPECT_EQ(exitCodeForRun(false, true, true),
              static_cast<int>(ExitCode::Quarantine));
    EXPECT_EQ(exitCodeForRun(true, true, true),
              static_cast<int>(ExitCode::Deadlock));
}

RuntimeConfig
recoverConfig(std::uint64_t seed, double rolloverRate = 0)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.deterministic = true;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.onRace = OnRacePolicy::Recover;
    config.maxRecoveries = 1u << 30; // never quarantine here
    config.inject.enabled = true;
    config.inject.seed = seed;
    // Dropped happens-before edges on a properly locked counter: the
    // physical mutex still serializes the data, so every detected race
    // is metadata-only and recovery must converge on the locked answer.
    config.inject.skipAcquireRate = 0.2;
    config.inject.rolloverRate = rolloverRate;
    return config;
}

struct MicroResult
{
    int counter = 0;
    recover::RecoveryStats stats;
    CheckerStats checker;
};

MicroResult
runLockedCounter(std::uint64_t seed, double rolloverRate = 0)
{
    CleanRuntime rt(recoverConfig(seed, rolloverRate));
    auto *x = rt.heap().allocSharedArray<int>(1);
    CleanMutex m(rt);
    std::vector<ThreadHandle> handles;
    for (int t = 0; t < 4; ++t) {
        handles.push_back(
            rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
                for (int i = 0; i < 50; ++i) {
                    m.lock(ctx);
                    ctx.write(&x[0], ctx.read(&x[0]) + 1);
                    m.unlock(ctx);
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);
    MicroResult r;
    r.counter = rt.mainContext().read(&x[0]);
    r.stats = rt.recoveryManager()->stats();
    r.checker = rt.aggregatedCheckerStats();
    return r;
}

TEST(RecoverStats, ReplayedAccessesDoNotDoubleCount)
{
    // Regression (ISSUE 4 satellite): a rolled-back-and-replayed SFR
    // used to bump sharedReads/sharedWrites a second time for accesses
    // the program performed once. The program does exactly 200 locked
    // writes and 201 reads (the increments plus the final readback),
    // independent of how many SFRs recovery re-executed; the replay
    // cost must land in the separate .replayed* counters instead.
    std::uint64_t totalRecovered = 0, totalReplayed = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const MicroResult r = runLockedCounter(seed);
        EXPECT_EQ(r.counter, 200) << "seed " << seed;
        EXPECT_EQ(r.checker.sharedWrites, 200u) << "seed " << seed;
        EXPECT_EQ(r.checker.sharedReads, 201u) << "seed " << seed;
        totalRecovered += r.stats.recovered;
        totalReplayed +=
            r.checker.replayedReads + r.checker.replayedWrites;
    }
    // The sweep must exercise recovery, and recovery must re-execute
    // accesses — otherwise the exact counts above prove nothing.
    EXPECT_GT(totalRecovered, 0u);
    EXPECT_GT(totalReplayed, 0u);
}

TEST(RecoverDeterminism, FortySeedsReplayToTheLockedAnswer)
{
    // The ISSUE 3 acceptance property: for every seed, recovery lands on
    // the race-free final value, and a second run of the same seed
    // reproduces both the value and the recovery episode counts.
    // (Rollover faults stay out of this lane: a shadow reset is taken at
    // physically-timed park points and masks a timing-dependent subset
    // of metadata races, so episode *counts* are only deterministic
    // without resets. Value convergence across resets is the next test.)
    std::uint64_t totalRecovered = 0;
    for (std::uint64_t seed = 1; seed <= 40; ++seed) {
        const MicroResult a = runLockedCounter(seed);
        const MicroResult b = runLockedCounter(seed);
        EXPECT_EQ(a.counter, 200) << "seed " << seed;
        EXPECT_EQ(b.counter, 200) << "seed " << seed;
        EXPECT_EQ(a.stats.recovered, b.stats.recovered)
            << "seed " << seed;
        EXPECT_EQ(a.stats.episodes, b.stats.episodes) << "seed " << seed;
        EXPECT_EQ(a.stats.quarantinedSites, 0u) << "seed " << seed;
        totalRecovered += a.stats.recovered;
    }
    // The sweep must actually exercise recovery, not just pass vacuously.
    EXPECT_GT(totalRecovered, 0u);
}

TEST(RecoverRollover, UndoLogsSurviveForcedShadowResets)
{
    // Forced rollovers interleave shadow resets with recovery episodes:
    // performReset rewrites each parked thread's pending undo-log epochs
    // to the reset value, so a rollback that straddles a reset restores
    // a consistent shadow. Reset points are physically timed, so only
    // the locked final value (not the episode count) is asserted.
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        const MicroResult r = runLockedCounter(seed, 0.01);
        EXPECT_EQ(r.counter, 200) << "seed " << seed;
        EXPECT_EQ(r.stats.quarantinedSites, 0u) << "seed " << seed;
    }
}

wl::RunSpec
recoverSpec(const std::string &workload)
{
    wl::RunSpec spec;
    spec.workload = workload;
    spec.backend = wl::BackendKind::Clean;
    spec.params.threads = 4;
    spec.params.scale = wl::Scale::Test;
    spec.runtime.maxThreads = 32;
    spec.runtime.heap.sharedBytes = std::size_t{256} << 20;
    spec.runtime.heap.privateBytes = std::size_t{64} << 20;
    spec.runtime.onRace = OnRacePolicy::Recover;
    spec.runtime.inject.enabled = true;
    return spec;
}

TEST(RecoverKill, KilledThreadsRetireInsteadOfWedgingTheRun)
{
    // The exact seed that test_injection pins as a DeadlockError under
    // Throw: under Recover the supervisor rolls back the killed thread's
    // open SFR and retires its Kendo slot, and the run completes.
    auto spec = recoverSpec("fft");
    spec.runtime.watchdogMs = 500;
    spec.runtime.inject.seed = 1;
    spec.runtime.inject.killRate = 0.0005;

    const auto result = wl::runWorkload(spec);
    EXPECT_FALSE(result.deadlock) << result.deadlockMessage;
    EXPECT_FALSE(result.raceException) << result.raceMessage;
    EXPECT_GE(result.recoveredKills, 1u);
    EXPECT_EQ(result.quarantinedSites, 0u);

    const auto replay = wl::runWorkload(spec);
    EXPECT_FALSE(replay.deadlock);
    EXPECT_EQ(replay.recoveredKills, result.recoveredKills);
}

TEST(RecoverQuarantine, ExhaustedSiteDegradesAndNamesItself)
{
    // maxRecoveries=0 denies every episode: the site is quarantined on
    // first contact, the race degrades to Report, and the run completes
    // with the quarantine named in the failure report.
    auto spec = recoverSpec("streamcluster");
    spec.runtime.maxRecoveries = 0;
    spec.runtime.inject.seed = 2;
    spec.runtime.inject.skipAcquireRate = 0.05;

    const auto result = wl::runWorkload(spec);
    EXPECT_FALSE(result.deadlock);
    EXPECT_FALSE(result.raceException);
    EXPECT_GT(result.raceCount, 0u);
    EXPECT_GE(result.quarantinedSites, 1u);
    EXPECT_NE(result.failureReport.find("\"outcome\":\"degraded\""),
              std::string::npos)
        << result.failureReport;
    EXPECT_NE(result.failureReport.find("\"quarantinedSites\":["),
              std::string::npos);
    EXPECT_EQ(exitCodeForRun(result.deadlock,
                             result.quarantinedSites > 0, false),
              static_cast<int>(ExitCode::Quarantine));
}

TEST(RecoverOutput, RecoveredRunMatchesTheFaultFreeOutput)
{
    // End-to-end acceptance: a recovered run's output hash equals the
    // fault-free run's on a real suite workload.
    auto clean = recoverSpec("streamcluster");
    clean.runtime.inject.enabled = false;
    const auto reference = wl::runWorkload(clean);

    auto faulty = recoverSpec("streamcluster");
    faulty.runtime.inject.seed = 2;
    faulty.runtime.inject.skipAcquireRate = 0.05;
    const auto recovered = wl::runWorkload(faulty);

    EXPECT_FALSE(recovered.raceException);
    EXPECT_FALSE(recovered.deadlock);
    EXPECT_GT(recovered.recoveredRaces, 0u);
    EXPECT_EQ(recovered.outputHash, reference.outputHash);
    EXPECT_NE(recovered.failureReport.find("\"outcome\":\"recovered\""),
              std::string::npos)
        << recovered.failureReport;
}

// ---------------------------------------------------------------------
// Ownership-cache flush sites (this PR). The cache asserts "these
// shadow bytes hold my current epoch"; two events falsify that claim
// without any race at the owner's next access, and each must flush:
// a recovery rollback (epochs retracted, ownEpoch unchanged) and a
// rollover reset (every epoch rewritten to 0). Both tests are built so
// a stale hit would *skip a real check* and hide the second race —
// they fail if the corresponding flush site is removed.
// ---------------------------------------------------------------------

TEST(RecoverOwnCache, RollbackFlushesTheOwnershipCache)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.onRace = OnRacePolicy::Recover;

    CleanRuntime rt(config);
    auto *arr = rt.heap().allocSharedArray<int>(64);
    int *x = &arr[0];  // line the child owns and re-hits
    int *y = &arr[32]; // 128 bytes away: a different 64B line
    std::atomic<bool> mainWroteY{false}, childDone{false};
    ThreadId childTid = 0;

    auto h = rt.spawn(rt.mainContext(), [&](ThreadContext &ctx) {
        childTid = ctx.tid();
        while (!mainWroteY.load(std::memory_order_acquire))
            std::this_thread::yield();
        // One SFR: claim x's line (the third write is a cache hit),
        // then hit main's unordered epoch at y — a WAW detected here.
        // Recovery rolls this SFR back (retracting the x epochs) and
        // replays it; the replayed x writes MUST miss the cache and
        // republish, or x's shadow keeps the rolled-back zero epoch.
        ctx.write(x, 5);
        ctx.write(x + 1, 6);
        ctx.write(x, 7);
        EXPECT_GT(ctx.state().stats.ownCacheHits(), 0u);
        ctx.write(y, 8); // races with main's write; recovered in place
        childDone.store(true, std::memory_order_release);
    });

    rt.mainContext().write(y, 1); // unordered with the child (post-spawn)
    mainWroteY.store(true, std::memory_order_release);
    while (!childDone.load(std::memory_order_acquire))
        std::this_thread::yield();

    // The child's replay republished its epoch over x, so this read is
    // a genuine RAW (the child is unordered with us) and must be
    // detected. A stale hit inside the replay leaves x's shadow at the
    // rolled-back zero epoch and this race silently disappears.
    (void)rt.mainContext().read(x);
    rt.join(rt.mainContext(), h);

    EXPECT_EQ(rt.raceCount(), 2u)
        << "the RAW after recovery was not detected";
    ASSERT_NE(rt.firstRace(), nullptr);
    EXPECT_EQ(rt.firstRace()->kind(), RaceKind::Waw);
    EXPECT_EQ(rt.firstRace()->accessor(), childTid);
}

TEST(RecoverOwnCache, ForcedRolloverFlushesTheOwnershipCache)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.onRace = OnRacePolicy::Report;

    CleanRuntime rt(config);
    auto *y = rt.heap().allocSharedArray<int>(16);
    ThreadContext &main = rt.mainContext();

    // The stale claim must belong to a thread whose clock does not
    // change across the reset, or refreshOwnEpoch's change-detection
    // flush covers for the reset flush and the test guards nothing.
    // performReset restarts every clock at 1, and a spawned child that
    // never releases stays at its spawn clock of 1 — so the child owns
    // the line and the child re-reads it after the reset.
    std::atomic<bool> claimed{false}, resetDone{false};
    ThreadId childTid = 0;
    auto h = rt.spawn(main, [&](ThreadContext &ctx) {
        childTid = ctx.tid();
        // Own y's line: publish, then re-hit it from the cache.
        ctx.write(&y[0], 1);
        ctx.write(&y[1], 2);
        ctx.write(&y[0], 3);
        EXPECT_GT(ctx.state().stats.ownCacheHits(), 0u);
        claimed.store(true, std::memory_order_release);
        while (!resetDone.load(std::memory_order_acquire))
            ctx.pollRollover(); // park here while main forces the reset
        // Post-reset clocks restart mutually unordered, so main's
        // rewrite of y[0] below is an epoch this thread does not cover.
        // With the reset flush in place this read consults the shadow
        // and reports a RAW; a stale pre-reset hit would skip the
        // check and hide it.
        (void)ctx.read(&y[0]);
    });

    while (!claimed.load(std::memory_order_acquire))
        std::this_thread::yield();
    rt.rollover().request();
    main.pollRollover();
    ASSERT_GT(rt.rolloverResets(), 0u);
    // The reset rewrote y's shadow to the zero epoch; this publishes
    // main's post-reset epoch over the line the child still claims.
    main.write(&y[0], 7);
    resetDone.store(true, std::memory_order_release);
    rt.join(main, h);

    EXPECT_EQ(rt.raceCount(), 1u)
        << "the post-reset RAW was not detected (stale ownership hit?)";
    ASSERT_NE(rt.firstRace(), nullptr);
    EXPECT_EQ(rt.firstRace()->kind(), RaceKind::Raw);
    EXPECT_EQ(rt.firstRace()->accessor(), childTid);
    EXPECT_EQ(rt.firstRace()->previousWriter(), main.tid());
}

} // namespace
} // namespace clean
