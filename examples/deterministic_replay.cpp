/**
 * @file
 * Multithreaded-replica determinism (§3.1.2).
 *
 * The paper motivates CLEAN's determinism with replica-based fault
 * tolerance: multithreaded replicas must produce identical results so a
 * quorum can distinguish correct from faulty nodes. This example runs N
 * "replicas" of the same parallel computation:
 *
 *   - under plain nondeterministic execution, an unsynchronized-order
 *    (but data-race-free-by-locks) computation whose *result* depends on
 *     lock acquisition order diverges between replicas;
 *   - under CLEAN, every replica produces the same fingerprint.
 */

#include <cstdio>

#include "workloads/registry.h"
#include "workloads/runner.h"

using namespace clean;
using namespace clean::wl;

namespace
{

RunSpec
replicaSpec(BackendKind backend, std::uint64_t seed)
{
    // radiosity's task-stealing makes the (race-free) result depend on
    // the dynamic schedule: the perfect determinism stress test.
    RunSpec spec;
    spec.workload = "radiosity";
    spec.backend = backend;
    spec.params.threads = 4;
    spec.params.scale = Scale::Test;
    spec.params.seed = seed;
    return spec;
}

} // namespace

int
main()
{
    constexpr int kReplicas = 4;
    std::printf("== Deterministic multithreaded replicas ==\n\n");

    std::printf("plain (nondeterministic) execution, %d replicas:\n",
                kReplicas);
    std::uint64_t nativeHashes[kReplicas];
    for (int r = 0; r < kReplicas; ++r) {
        nativeHashes[r] =
            runWorkload(replicaSpec(BackendKind::Native, 7)).outputHash;
        std::printf("  replica %d -> %016llx\n", r,
                    static_cast<unsigned long long>(nativeHashes[r]));
    }
    bool nativeAgree = true;
    for (int r = 1; r < kReplicas; ++r)
        nativeAgree &= nativeHashes[r] == nativeHashes[0];
    std::printf("  quorum agreement: %s\n\n",
                nativeAgree ? "yes (lucky schedule)" : "NO — divergence");

    std::printf("CLEAN execution, %d replicas:\n", kReplicas);
    std::uint64_t cleanHashes[kReplicas];
    bool anyException = false;
    for (int r = 0; r < kReplicas; ++r) {
        const auto result = runWorkload(replicaSpec(BackendKind::Clean, 7));
        anyException |= result.raceException;
        cleanHashes[r] = result.outputHash;
        std::printf("  replica %d -> %016llx\n", r,
                    static_cast<unsigned long long>(cleanHashes[r]));
    }
    bool cleanAgree = true;
    for (int r = 1; r < kReplicas; ++r)
        cleanAgree &= cleanHashes[r] == cleanHashes[0];
    std::printf("  exceptions: %s; quorum agreement: %s\n",
                anyException ? "yes" : "no",
                cleanAgree ? "yes — guaranteed" : "NO (bug!)");
    return cleanAgree ? 0 : 1;
}
