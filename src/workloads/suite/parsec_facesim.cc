/**
 * @file
 * facesim — mesh physics simulation (PARSEC).
 *
 * A tetrahedral-mesh stand-in: elements connect 4 vertices; per
 * timestep every thread processes a slice of elements, computing an
 * elastic force from the element's vertex positions and scatter-adding
 * it to the vertices under striped vertex locks, then integrates its
 * own vertex slice. Barriers separate the force and integrate phases.
 * Moderately frequent synchronization puts facesim in the paper's
 * rollover list (Table 1: 8.2 rollovers/second). Race-free.
 *
 * (The paper omits facesim from the *hardware* simulation for running
 * time; bench_fig9 mirrors that.)
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Facesim : public KernelBase
{
  public:
    Facesim() : KernelBase("facesim", "parsec", false) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nVertices = scaled(p.scale, 384, 1536, 6144);
        const std::uint64_t nElements = nVertices * 2;
        const std::uint64_t steps = scaled(p.scale, 2, 3, 6);

        auto *posX = env.allocShared<double>(nVertices);
        auto *posY = env.allocShared<double>(nVertices);
        auto *velX = env.allocShared<double>(nVertices);
        auto *velY = env.allocShared<double>(nVertices);
        auto *frcX = env.allocShared<double>(nVertices);
        auto *frcY = env.allocShared<double>(nVertices);
        auto *elem = env.allocShared<std::uint32_t>(nElements * 4);

        std::vector<unsigned> vertexLocks;
        for (unsigned i = 0; i < 64; ++i)
            vertexLocks.push_back(env.createMutex());
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t v = 0; v < nVertices; ++v) {
                posX[v] = init.nextDouble();
                posY[v] = init.nextDouble();
                velX[v] = velY[v] = 0.0;
                frcX[v] = frcY[v] = 0.0;
            }
            for (std::uint64_t e = 0; e < nElements; ++e) {
                // Local neighborhoods: element vertices are nearby.
                const std::uint64_t base = init.nextBelow(nVertices);
                for (unsigned k = 0; k < 4; ++k)
                    elem[e * 4 + k] = static_cast<std::uint32_t>(
                        (base + k * 3 + init.nextBelow(3)) % nVertices);
            }
        }

        env.parallel(p.threads, [&](Worker &w) {
            const Slice ve = sliceOf(nVertices, w.index(), w.count());
            const Slice el = sliceOf(nElements, w.index(), w.count());
            auto lockOf = [&](std::uint32_t v) {
                return vertexLocks[v % vertexLocks.size()];
            };

            for (std::uint64_t step = 0; step < steps; ++step) {
                for (std::uint64_t v = ve.begin; v < ve.end; ++v) {
                    w.write(&frcX[v], 0.0);
                    w.write(&frcY[v], 0.0);
                }
                w.barrier(phase);

                for (std::uint64_t e = el.begin; e < el.end; ++e) {
                    std::uint32_t vs[4];
                    double cx = 0.0, cy = 0.0;
                    for (unsigned k = 0; k < 4; ++k) {
                        vs[k] = w.read(&elem[e * 4 + k]);
                        // Positions are stable during the force phase;
                        // reading without the vertex lock is safe
                        // (they are written only in integrate, across
                        // a barrier).
                        cx += w.read(&posX[vs[k]]);
                        cy += w.read(&posY[vs[k]]);
                    }
                    cx *= 0.25;
                    cy *= 0.25;
                    for (unsigned k = 0; k < 4; ++k) {
                        const double dx = cx - w.read(&posX[vs[k]]);
                        const double dy = cy - w.read(&posY[vs[k]]);
                        const double fx = 0.5 * dx;
                        const double fy = 0.5 * dy;
                        w.lock(lockOf(vs[k]));
                        w.update(&frcX[vs[k]],
                                 [fx](double v) { return v + fx; });
                        w.update(&frcY[vs[k]],
                                 [fy](double v) { return v + fy; });
                        w.unlock(lockOf(vs[k]));
                        w.compute(12);
                    }
                }
                w.barrier(phase);

                for (std::uint64_t v = ve.begin; v < ve.end; ++v) {
                    const double dt = 0.02;
                    const double vx =
                        (w.read(&velX[v]) + dt * w.read(&frcX[v])) *
                        0.995;
                    const double vy =
                        (w.read(&velY[v]) + dt * w.read(&frcY[v])) *
                        0.995;
                    w.write(&velX[v], vx);
                    w.write(&velY[v], vy);
                    w.update(&posX[v],
                             [vx](double x) { return x + 0.02 * vx; });
                    w.update(&posY[v],
                             [vy](double y) { return y + 0.02 * vy; });
                    w.compute(8);
                }
                w.barrier(phase);
            }

            std::uint64_t h = 0;
            for (std::uint64_t v = ve.begin; v < ve.end; ++v)
                h = h * 31 +
                    static_cast<std::uint64_t>(
                        (w.read(&posX[v]) + w.read(&posY[v])) * 1e6);
            w.sink(h);
        });

        env.declareOutput(posX, nVertices * sizeof(double));
    }
};

} // namespace

std::unique_ptr<Workload>
makeFacesim()
{
    return std::make_unique<Facesim>();
}

} // namespace clean::wl::suite
