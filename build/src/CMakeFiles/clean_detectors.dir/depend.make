# Empty dependencies file for clean_detectors.
# This may be replaced when dependencies are built.
