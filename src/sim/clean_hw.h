/**
 * @file
 * The CLEAN hardware race-check unit (§5, Figures 3-5).
 *
 * Per potentially-shared access the unit, in parallel with the data
 * access:
 *   1. computes the epoch address assuming the compact layout and loads
 *      the epoch line through the regular cache hierarchy;
 *   2. runs the fast-path comparator against the per-core cached main
 *      vector-clock element: sameThread && (read || sameEpoch) finishes
 *      the check immediately (Figure 4b);
 *   3. otherwise loads the needed vector-clock element from memory and
 *      compares (race => exception), and for writes publishes the new
 *      epoch (metadata write);
 *   4. maintains the compact/expanded line state (§5.3): a partial
 *      4-byte-group write with a different epoch "stretches" the line
 *      into 4 epoch lines (1 cycle + 4 line writes); accesses to
 *      expanded lines pay the address-miscalculation penalty (>= 1
 *      cycle, possibly an extra epoch-line access).
 *
 * The check runs concurrently with the data access, so the unit returns
 * its own latency and the caller charges max(dataLatency, checkLatency)
 * (§5.4).
 *
 * Epoch-size ablations (Figure 11): Byte1 models hypothetical 8-bit
 * epochs (1:1 metadata, no compaction — the performance upper bound);
 * Byte4 models 4-byte epochs per data byte without compaction (4:1
 * metadata, the cache-pressure worst case). Both change only metadata
 * addressing/traffic; the functional check is identical.
 */

#ifndef CLEAN_SIM_CLEAN_HW_H
#define CLEAN_SIM_CLEAN_HW_H

#include <memory>
#include <unordered_map>

#include "core/epoch.h"
#include "core/vector_clock.h"
#include "sim/memory_hierarchy.h"
#include "support/common.h"
#include "support/stats.h"

namespace clean::sim
{

/** Metadata organization under evaluation (Figure 11). */
enum class EpochMode { Clean, Byte1, Byte4 };

const char *epochModeName(EpochMode mode);

/** Counters behind Figures 9 and 10. */
struct HwStats
{
    std::uint64_t privateAccesses = 0;
    std::uint64_t fastAccesses = 0;
    std::uint64_t vcLoadAccesses = 0;
    std::uint64_t updateAccesses = 0;
    std::uint64_t vcLoadUpdateAccesses = 0;
    std::uint64_t expandAccesses = 0;
    std::uint64_t compactLineAccesses = 0;
    std::uint64_t expandedLineAccesses = 0;
    std::uint64_t lineExpansions = 0;
    std::uint64_t miscalcPenalties = 0;
    std::uint64_t racesDetected = 0;

    std::uint64_t
    sharedAccesses() const
    {
        return fastAccesses + vcLoadAccesses + updateAccesses +
               vcLoadUpdateAccesses + expandAccesses;
    }

    void exportTo(StatSet &stats, const std::string &prefix) const;
};

/** One per machine; cores share it the way they share the hierarchy. */
class CleanHwUnit
{
  public:
    CleanHwUnit(MemoryHierarchy &mem, unsigned cores,
                EpochMode mode = EpochMode::Clean,
                const EpochConfig &config = kDefaultEpochConfig);

    /**
     * Ablation: disable the Figure 4b fast-path comparator. Every
     * shared access then loads the vector-clock element from memory,
     * modeling hardware without the per-core cached main element —
     * quantifies what the paper's "majority of accesses resolve
     * swiftly" observation (§5.2) is worth.
     */
    void setFastPathEnabled(bool enabled) { fastPath_ = enabled; }

    /**
     * Models the race check for a shared access. @p vc is the accessing
     * thread's vector clock (its main element is the per-core cached
     * register). Returns the check path's latency; races are counted in
     * stats (the trace-driven evaluation runs race-free programs, so a
     * nonzero count flags a modeling or workload bug).
     *
     * @p tid identifies the accessing *thread*; it defaults to the core
     * index (the paper's 1-thread-per-core configuration) and must be
     * passed explicitly when the machine time-shares cores.
     */
    Cycles checkAccess(unsigned core, const VectorClock &vc, Addr addr,
                       std::size_t size, bool isWrite,
                       ThreadId tid = kTidFromCore);

    static constexpr ThreadId kTidFromCore = ~ThreadId{0};

    /** Records a private access (no check; Figure 10's left category). */
    void notePrivate() { stats_.privateAccesses++; }

    HwStats &stats() { return stats_; }
    const EpochConfig &config() const { return config_; }
    EpochMode mode() const { return mode_; }

  private:
    // Synthetic metadata address spaces (data addresses are normalized
    // to start near 1 MiB, far below these).
    static constexpr Addr kCompactBase = Addr{1} << 45;
    static constexpr Addr kExpandedBase = Addr{1} << 46;
    static constexpr Addr kVcBase = Addr{1} << 44;

    static constexpr std::size_t kPageBytes = 4096;

    EpochValue *epochPage(Addr addr);
    EpochValue epochAt(Addr addr);
    void setEpoch(Addr addr, EpochValue e);

    /** Compact-layout epoch line (one per data line). */
    Addr
    compactMetaLine(Addr dataLine) const
    {
        return (kCompactBase / kCacheLineBytes) + dataLine;
    }

    /** Expanded-layout epoch line s (1..3) of a data line; s == 0 lives
     *  at the compact address (Figure 5c). */
    Addr
    expandedMetaLine(Addr dataLine, unsigned s) const
    {
        return (kExpandedBase / kCacheLineBytes) + dataLine * 3 + (s - 1);
    }

    Addr
    vcLine(unsigned core) const
    {
        return (kVcBase / kCacheLineBytes) + core;
    }

    Cycles checkClean(unsigned core, ThreadId myTid,
                      const VectorClock &vc, Addr addr,
                      std::size_t size, bool isWrite);
    Cycles checkFlat(unsigned core, ThreadId myTid,
                     const VectorClock &vc, Addr addr,
                     std::size_t size, bool isWrite,
                     unsigned bytesPerEpoch);

    MemoryHierarchy &mem_;
    EpochMode mode_;
    EpochConfig config_;
    bool fastPath_ = true;
    HwStats stats_;

    std::unordered_map<Addr, std::unique_ptr<EpochValue[]>> pages_;
    /** Data lines currently in the expanded state (Clean mode). */
    std::unordered_map<Addr, bool> expandedLines_;
};

} // namespace clean::sim

#endif // CLEAN_SIM_CLEAN_HW_H
