# Empty compiler generated dependencies file for bench_ablation_atomicity.
# This may be replaced when dependencies are built.
