#include "inject/injection.h"

#include "support/logging.h"

namespace clean::inject
{

namespace
{

/** SplitMix64 finalizer; full avalanche over the packed coordinate. */
std::uint64_t
mix(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
decisionHash(std::uint64_t seed, FaultKind kind, ThreadId tid,
             std::uint64_t coord)
{
    std::uint64_t x = seed;
    x = mix(x + 0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(kind) + 1));
    x = mix(x ^ (static_cast<std::uint64_t>(tid) + 0x100));
    x = mix(x ^ coord);
    return x;
}

std::uint64_t
rateToThreshold(double rate)
{
    if (rate <= 0)
        return 0;
    if (rate >= 1)
        return ~std::uint64_t{0};
    return static_cast<std::uint64_t>(rate * 18446744073709551615.0);
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::SkipCheck: return "skip-check";
      case FaultKind::SkipAcquire: return "skip-acquire";
      case FaultKind::Delay: return "delay";
      case FaultKind::ForceRollover: return "rollover";
      case FaultKind::KillThread: return "kill";
      case FaultKind::kCount_: break;
    }
    return "?";
}

ThreadKilled::ThreadKilled(ThreadId tid, std::uint64_t coord)
    : tid_(tid), coord_(coord)
{
    message_ = "injected kill of thread " + std::to_string(tid_) +
               " at coordinate " + std::to_string(coord_);
}

InjectionPlan::InjectionPlan(const InjectionConfig &config)
    : config_(config)
{
    thresholds_[static_cast<unsigned>(FaultKind::SkipCheck)] =
        rateToThreshold(config.skipCheckRate);
    thresholds_[static_cast<unsigned>(FaultKind::SkipAcquire)] =
        rateToThreshold(config.skipAcquireRate);
    thresholds_[static_cast<unsigned>(FaultKind::Delay)] =
        rateToThreshold(config.delayRate);
    thresholds_[static_cast<unsigned>(FaultKind::ForceRollover)] =
        rateToThreshold(config.rolloverRate);
    thresholds_[static_cast<unsigned>(FaultKind::KillThread)] =
        rateToThreshold(config.killRate);
}

bool
InjectionPlan::wouldFire(FaultKind kind, ThreadId tid,
                         std::uint64_t coord) const
{
    const std::uint64_t threshold =
        thresholds_[static_cast<unsigned>(kind)];
    if (threshold == 0)
        return false;
    if (kind == FaultKind::KillThread && tid == 0)
        return false;
    return decisionHash(config_.seed, kind, tid, coord) <= threshold;
}

bool
InjectionPlan::skipCheck(ThreadId tid, std::uint64_t coord)
{
    if (!wouldFire(FaultKind::SkipCheck, tid, coord))
        return false;
    skippedChecks_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
InjectionPlan::skipAcquire(ThreadId tid, std::uint64_t coord)
{
    if (!wouldFire(FaultKind::SkipAcquire, tid, coord))
        return false;
    skippedAcquires_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::uint32_t
InjectionPlan::delayMicros(ThreadId tid, std::uint64_t coord)
{
    if (!wouldFire(FaultKind::Delay, tid, coord))
        return 0;
    delays_.fetch_add(1, std::memory_order_relaxed);
    return config_.delayMicros;
}

bool
InjectionPlan::forceRollover(ThreadId tid, std::uint64_t coord)
{
    if (!wouldFire(FaultKind::ForceRollover, tid, coord))
        return false;
    rollovers_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
InjectionPlan::killThread(ThreadId tid, std::uint64_t coord)
{
    if (!wouldFire(FaultKind::KillThread, tid, coord))
        return false;
    kills_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

InjectionStats
InjectionPlan::stats() const
{
    InjectionStats s;
    s.skippedChecks = skippedChecks_.load(std::memory_order_relaxed);
    s.skippedAcquires = skippedAcquires_.load(std::memory_order_relaxed);
    s.delays = delays_.load(std::memory_order_relaxed);
    s.rollovers = rollovers_.load(std::memory_order_relaxed);
    s.kills = kills_.load(std::memory_order_relaxed);
    return s;
}

} // namespace clean::inject
