#include "obs/trace_export.h"

#include <algorithm>
#include <map>

#include "support/json.h"

namespace clean::obs
{

namespace
{

const char *const kSliceNames[] = {"SFR", "recovery"};

/** Slice id of a paired kind, -1 for instant kinds. */
int
sliceId(EventKind kind)
{
    switch (kind) {
      case EventKind::SfrBegin:
      case EventKind::SfrEnd: return 0;
      case EventKind::RecoveryBegin:
      case EventKind::RecoveryEnd: return 1;
      default: return -1;
    }
}

bool
isBegin(EventKind kind)
{
    return kind == EventKind::SfrBegin ||
           kind == EventKind::RecoveryBegin;
}

void
writeCommon(JsonWriter &w, const char *name, const char *ph,
            ThreadId tid, std::uint64_t ts)
{
    w.beginObject();
    w.field("name", name);
    w.field("ph", ph);
    w.field("pid", std::uint64_t{1});
    w.field("tid", static_cast<std::uint64_t>(tid));
    w.field("ts", ts);
}

void
writeArgs(JsonWriter &w, const Event &e)
{
    w.key("args").beginObject();
    w.field("kind", eventKindName(e.kind));
    w.field("seq", e.seq);
    w.field("arg0", e.arg0);
    w.field("arg1", e.arg1);
    w.endObject();
}

} // namespace

std::string
chromeTraceJson(const std::vector<Event> &events, ThreadId globalTid)
{
    JsonWriter w;
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents").beginArray();

    // Thread-name metadata, smallest tid first (std::map order) so the
    // output is a pure function of the event stream.
    std::map<ThreadId, bool> tids;
    std::uint64_t maxTs = 0;
    for (const Event &e : events) {
        tids[e.tid] = true;
        maxTs = std::max(maxTs, e.det);
    }
    for (const auto &[tid, unused] : tids) {
        (void)unused;
        w.beginObject();
        w.field("name", "thread_name");
        w.field("ph", "M");
        w.field("pid", std::uint64_t{1});
        w.field("tid", static_cast<std::uint64_t>(tid));
        w.key("args").beginObject();
        w.field("name", tid == globalTid
                            ? std::string("runtime")
                            : "T" + std::to_string(tid));
        w.endObject();
        w.endObject();
    }

    // Open-slice depth per (tid, slice id): repairs unbalanced pairs so
    // the trace always loads (see header comment).
    std::map<std::pair<ThreadId, int>, std::uint64_t> depth;

    for (const Event &e : events) {
        const int slice = sliceId(e.kind);
        if (slice < 0) {
            writeCommon(w, eventKindName(e.kind), "i", e.tid, e.det);
            w.field("s", "t");
            writeArgs(w, e);
            w.endObject();
            continue;
        }
        const auto key = std::make_pair(e.tid, slice);
        if (isBegin(e.kind)) {
            depth[key]++;
            writeCommon(w, kSliceNames[slice], "B", e.tid, e.det);
            writeArgs(w, e);
            w.endObject();
        } else if (depth[key] > 0) {
            depth[key]--;
            writeCommon(w, kSliceNames[slice], "E", e.tid, e.det);
            writeArgs(w, e);
            w.endObject();
        } else {
            // Orphan end (its begin was overwritten in the ring).
            writeCommon(w, eventKindName(e.kind), "i", e.tid, e.det);
            w.field("s", "t");
            writeArgs(w, e);
            w.endObject();
        }
    }

    // Close still-open slices at the final timestamp.
    for (const auto &[key, open] : depth) {
        for (std::uint64_t i = 0; i < open; ++i) {
            writeCommon(w, kSliceNames[key.second], "E", key.first,
                        maxTs);
            w.endObject();
        }
    }

    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace clean::obs
