/**
 * @file
 * blackscholes — embarrassingly parallel option pricing (PARSEC).
 *
 * Each thread prices a disjoint slice of options with the Black-Scholes
 * closed form: five 8-byte reads and one 8-byte write per option, so
 * virtually every shared access is wide and same-epoch — the best case
 * for the vectorized multi-byte check (Figure 8). Race-free; one of the
 * paper's 9 clean benchmarks.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

struct Option
{
    double spot, strike, rate, vol, time;
    double price;
    double pad[2];
};

double
cndf(double x)
{
    // Abramowitz-Stegun polynomial approximation.
    const double a1 = 0.319381530, a2 = -0.356563782, a3 = 1.781477937,
                 a4 = -1.821255978, a5 = 1.330274429;
    const double l = std::fabs(x);
    const double k = 1.0 / (1.0 + 0.2316419 * l);
    double cnd =
        1.0 - 1.0 / std::sqrt(2 * 3.14159265358979) *
                  std::exp(-l * l / 2.0) *
                  (a1 * k + a2 * k * k + a3 * k * k * k +
                   a4 * k * k * k * k + a5 * k * k * k * k * k);
    return x < 0 ? 1.0 - cnd : cnd;
}

class Blackscholes : public KernelBase
{
  public:
    Blackscholes() : KernelBase("blackscholes", "parsec", false) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nOptions =
            scaled(p.scale, 4096, 16384, 65536);
        const std::uint64_t rounds = scaled(p.scale, 2, 3, 5);

        auto *options = env.allocShared<Option>(nOptions);
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < nOptions; ++i) {
                options[i].spot = 50.0 + init.nextDouble() * 50.0;
                options[i].strike = 50.0 + init.nextDouble() * 50.0;
                options[i].rate = 0.01 + init.nextDouble() * 0.05;
                options[i].vol = 0.1 + init.nextDouble() * 0.4;
                options[i].time = 0.25 + init.nextDouble() * 2.0;
                options[i].price = 0.0;
            }
        }

        env.parallel(p.threads, [&](Worker &w) {
            const Slice slice = sliceOf(nOptions, w.index(), w.count());
            // Stack-like scratch for the intermediate terms (the real
            // kernel spills these locals).
            auto *scratch = env.allocPrivate<double>(4);
            for (std::uint64_t r = 0; r < rounds; ++r) {
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const double s = w.read(&options[i].spot);
                    const double k = w.read(&options[i].strike);
                    const double rf = w.read(&options[i].rate);
                    const double v = w.read(&options[i].vol);
                    const double t = w.read(&options[i].time);
                    w.writePrivate(&scratch[0],
                                   (std::log(s / k) +
                                    (rf + v * v / 2.0) * t) /
                                       (v * std::sqrt(t)));
                    w.writePrivate(&scratch[1],
                                   w.readPrivate(&scratch[0]) -
                                       v * std::sqrt(t));
                    w.writePrivate(&scratch[2],
                                   cndf(w.readPrivate(&scratch[0])));
                    w.writePrivate(&scratch[3],
                                   cndf(w.readPrivate(&scratch[1])));
                    const double call =
                        s * w.readPrivate(&scratch[2]) -
                        k * std::exp(-rf * t) *
                            w.readPrivate(&scratch[3]);
                    w.write(&options[i].price, call);
                    w.compute(40);
                }
                w.barrier(phase);
            }
            std::uint64_t h = 0;
            for (std::uint64_t i = slice.begin; i < slice.end;
                 i += 1 + (slice.end - slice.begin) / 64) {
                h = h * 31 + static_cast<std::uint64_t>(
                                 w.read(&options[i].price) * 1e4);
            }
            w.sink(h);
        });

        env.declareOutput(options, nOptions * sizeof(Option));
    }
};

} // namespace

std::unique_ptr<Workload>
makeBlackscholes()
{
    return std::make_unique<Blackscholes>();
}

} // namespace clean::wl::suite
