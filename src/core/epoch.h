/**
 * @file
 * Epoch representation (paper §2.3, §4.5, §5.3).
 *
 * An epoch packs (thread id, scalar clock) into one 32-bit word — the
 * entire per-byte write metadata CLEAN maintains. Layout (default config):
 *
 *   bit 31      : "expanded" flag, used only by the hardware metadata
 *                 organization (§5.3); software epochs keep it zero.
 *   bits 30..23 : reusable thread id (8 bits -> up to 256 live threads).
 *   bits 22..0  : scalar clock (23 bits). Clock widths are configurable;
 *                 Table 1 contrasts 23-bit vs 28-bit clocks.
 *
 * Vector-clock elements are stored as full epochs — the element for
 * thread t carries t in its tid bits (§4.1). The bits are redundant but
 * allow the race check to compare a location's epoch against a vector
 * clock element with a single integer comparison.
 */

#ifndef CLEAN_CORE_EPOCH_H
#define CLEAN_CORE_EPOCH_H

#include "support/common.h"
#include "support/logging.h"

namespace clean
{

/** Bit-layout parameters for 32-bit epochs. */
struct EpochConfig
{
    /** Bits for the scalar clock (low bits). */
    unsigned clockBits = 23;
    /** Bits for the reusable thread id (above the clock). */
    unsigned tidBits = 8;

    constexpr bool
    valid() const
    {
        // Bit 31 is reserved for the hardware "expanded" flag.
        return clockBits >= 4 && tidBits >= 1 && clockBits + tidBits <= 31;
    }

    constexpr EpochValue clockMask() const
    {
        return (EpochValue{1} << clockBits) - 1;
    }

    constexpr EpochValue tidMask() const
    {
        return (EpochValue{1} << tidBits) - 1;
    }

    /** Largest representable clock; reaching it triggers a rollover. */
    constexpr ClockValue maxClock() const { return clockMask(); }

    /** Number of distinct live thread ids. */
    constexpr ThreadId maxThreads() const { return tidMask() + 1; }

    /** Hardware compact/expanded flag (§5.3), never set in software. */
    static constexpr EpochValue expandedBit() { return EpochValue{1} << 31; }

    /** Packs (tid, clock) into an epoch. */
    constexpr EpochValue
    pack(ThreadId tid, ClockValue clock) const
    {
        return (static_cast<EpochValue>(tid & tidMask()) << clockBits) |
               (clock & clockMask());
    }

    /** Clock component of an epoch. */
    constexpr ClockValue clockOf(EpochValue e) const { return e & clockMask(); }

    /** Thread-id component of an epoch. */
    constexpr ThreadId
    tidOf(EpochValue e) const
    {
        return (e >> clockBits) & tidMask();
    }
};

/** The 23-bit-clock default used throughout the paper's evaluation. */
inline constexpr EpochConfig kDefaultEpochConfig{};

/** The 28-bit-clock configuration of Table 1 (no rollovers observed). */
inline constexpr EpochConfig kWideClockEpochConfig{28, 3};

} // namespace clean

#endif // CLEAN_CORE_EPOCH_H
