# Empty dependencies file for bench_fig7_shared_access_frequency.
# This may be replaced when dependencies are built.
