#include "obs/governor.h"

#include <algorithm>

namespace clean::obs
{

namespace
{

/** EWMA smoothing factor for the ns/read estimators. */
constexpr double kAlpha = 0.2;
/** Intervals below this many reads carry too much boundary noise. */
constexpr std::uint64_t kMinReads = 512;
/** Normal-interval reports between control-loop adjustments. */
constexpr std::uint32_t kAdjustEvery = 8;
/** Deadband around the budget inside which the level holds still. */
constexpr double kDeadbandLow = 0.9;
constexpr double kDeadbandHigh = 1.15;
/** Consecutive under-budget adjustment epochs before a down-step. Up
 *  and down are deliberately asymmetric: over-budget reacts in one
 *  epoch (the SLO is the contract), under-budget waits out this many
 *  (admission grows multiplicatively going down, and an eager descent
 *  ping-pongs — dive to admit-all, blow the budget, climb back). */
constexpr std::uint32_t kDownPatience = 3;

} // namespace

void
SamplingGovernor::report(std::uint64_t reads, std::uint64_t ns, bool calib)
{
    if (!config_.active || reads < kMinReads || ns == 0)
        return;
    const double nsPerRead =
        static_cast<double>(ns) / static_cast<double>(reads);
    std::lock_guard<std::mutex> guard(m_);
    if (calib) {
        calibNsPerRead_ = haveCalib_
                              ? calibNsPerRead_ +
                                    kAlpha * (nsPerRead - calibNsPerRead_)
                              : nsPerRead;
        haveCalib_ = true;
        return;
    }
    normalNsPerRead_ = haveNormal_
                           ? normalNsPerRead_ +
                                 kAlpha * (nsPerRead - normalNsPerRead_)
                           : nsPerRead;
    haveNormal_ = true;
    if (haveCalib_ && calibNsPerRead_ > 0.0) {
        // Reads-weighted run-mean accumulator: each normal interval's
        // overhead over the current calibration floor, weighted by the
        // reads it covered. This is what overheadPermille() reports —
        // a whole-run statistic, unlike the EWMAs, whose job is to
        // react (an end-of-run EWMA snapshot would report whatever
        // transient the run happened to end on). Deviations accumulate
        // *signed*, clipped at zero only in the final reading: on
        // phase-heavy workloads the floor estimate is noisy, and
        // clipping each interval would count every positive excursion
        // while discarding the negative ones that cancel it.
        const double intervalOverhead =
            (nsPerRead - calibNsPerRead_) / calibNsPerRead_;
        meanOverheadNum_ += intervalOverhead * static_cast<double>(reads);
        meanOverheadDen_ += static_cast<double>(reads);
    }
    if (++reportsSinceAdjust_ >= kAdjustEvery) {
        reportsSinceAdjust_ = 0;
        maybeAdjustLocked();
    }
}

void
SamplingGovernor::maybeAdjustLocked()
{
    if (!haveNormal_ || !haveCalib_ || calibNsPerRead_ <= 0.0)
        return;
    const double overhead =
        std::max(0.0, normalNsPerRead_ - calibNsPerRead_) / calibNsPerRead_;
    const double target = static_cast<double>(config_.budgetPct) / 100.0;
    const double ratio = overhead / target;
    const std::uint32_t level = level_.load(std::memory_order_relaxed);
    if (ratio > kDeadbandHigh) {
        // Over budget: shed harder, immediately. Coarse proportional
        // step — the ladder is geometric (~x0.75 admission per level),
        // so a few levels move the admitted fraction fast.
        belowStreak_ = 0;
        const std::uint32_t step = ratio > 4.0 ? 3 : ratio > 2.0 ? 2 : 1;
        level_.store(std::min(level + step, SampleGate::kMaxLevel),
                     std::memory_order_relaxed);
    } else if (ratio < kDeadbandLow && level > 0) {
        // Under budget: spend the headroom on detection again — but
        // only after kDownPatience consecutive under-budget epochs,
        // and one level at a time.
        if (++belowStreak_ >= kDownPatience) {
            belowStreak_ = 0;
            level_.store(level - 1, std::memory_order_relaxed);
        }
    } else {
        belowStreak_ = 0;
    }
}

std::int64_t
SamplingGovernor::overheadPermille() const
{
    std::lock_guard<std::mutex> guard(m_);
    if (meanOverheadDen_ <= 0.0)
        return -1;
    return static_cast<std::int64_t>(
        std::max(0.0, meanOverheadNum_ / meanOverheadDen_) * 1000.0);
}

} // namespace clean::obs
