#!/usr/bin/env python3
"""Perf-regression gate for the same-epoch micro-check benchmarks.

Compares a google-benchmark JSON result (produced with
``--benchmark_repetitions=N --benchmark_report_aggregates_only=true``)
against the committed baseline ``bench/baseline_microcheck.json`` and
fails (exit 1) if any gated benchmark's median regresses by more than
the threshold (default 25%).

The gated benchmarks cover the checker's per-access fast paths:

  * BM_ReadCheckSameEpoch8B / BM_WriteCheckSameEpoch8B — the
    ownership-cache hit path (owned-line re-access, the common case);
  * BM_ReadCheckSameEpoch8B_NoOwnCache /
    BM_WriteCheckSameEpoch8B_NoOwnCache — the same-epoch shadow fast
    path with the cache ablated (`--no-own-cache`, and the path every
    first touch of a line takes);
  * BM_ReadCheckOwnedMiss8B — the cache's conflict-miss path
    (direct-mapped eviction + re-claim on every access);
  * BM_WriteCheckFlushStorm8B — a generation flush before every
    access (the pathological sync-per-access workload).

Medians are compared rather than means because CI runners are noisy
and a single descheduled repetition should not trip the gate.

Usage:
  python3 bench/check_perf.py --baseline bench/baseline_microcheck.json \
      --result build/bench_result.json [--threshold 0.25]

Stdlib only; no third-party imports.
"""

import argparse
import json
import sys

GATED = (
    "BM_ReadCheckSameEpoch8B",
    "BM_WriteCheckSameEpoch8B",
    "BM_ReadCheckSameEpoch8B_NoOwnCache",
    "BM_WriteCheckSameEpoch8B_NoOwnCache",
    "BM_ReadCheckOwnedMiss8B",
    "BM_WriteCheckFlushStorm8B",
)


def load_medians(path):
    """Map benchmark base name -> median real_time in ns."""
    with open(path) as f:
        doc = json.load(f)
    medians = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows are named "<name>_median" with run_type
        # "aggregate"; plain repetition rows are skipped.
        if bench.get("aggregate_name") != "median":
            continue
        base = bench.get("run_name", bench["name"].rsplit("_", 1)[0])
        # run_name may carry "/repeats:N" suffixes; strip them.
        base = base.split("/")[0]
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        medians[base] = bench["real_time"] * scale
    return medians


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--result", required=True)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional regression")
    args = parser.parse_args()

    baseline = load_medians(args.baseline)
    result = load_medians(args.result)

    failed = False
    for name in GATED:
        if name not in baseline:
            print(f"FAIL {name}: missing from baseline {args.baseline}")
            failed = True
            continue
        if name not in result:
            print(f"FAIL {name}: missing from result {args.result} "
                  "(did the benchmark run with --benchmark_repetitions "
                  "and report_aggregates_only?)")
            failed = True
            continue
        base = baseline[name]
        now = result[name]
        delta = (now - base) / base
        status = "FAIL" if delta > args.threshold else "ok"
        print(f"{status:4s} {name}: baseline {base:.3f} ns, "
              f"now {now:.3f} ns ({delta:+.1%}, "
              f"limit +{args.threshold:.0%})")
        if delta > args.threshold:
            failed = True

    if failed:
        print()
        print("Same-epoch check medians regressed past the limit.")
        print("If this slowdown is intentional (e.g. the check itself "
              "changed), apply the 'perf-override' label to the PR and "
              "update bench/baseline_microcheck.json in the same change.")
        return 1
    print("perf gate: all gated benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
