/**
 * @file
 * FastTrack [Flanagan & Freund, PLDI'09] — full precise race detection.
 *
 * The paper's reference point: precise detection of ALL three race kinds
 * (WAW, RAW, WAR). This is what CLEAN deliberately simplifies:
 *
 *   - FastTrack must keep *read* metadata per location — a read epoch in
 *     the exclusive case, promoted to a full read vector clock once
 *     concurrent readers appear — because a write can race with a
 *     non-last read. CLEAN keeps only the write epoch.
 *   - FastTrack's write check scans the read vector clock (O(threads));
 *     CLEAN's is one comparison.
 *   - FastTrack updates metadata on reads; CLEAN never does.
 *   - FastTrack needs its check+update to be atomic; we use classic
 *     per-chunk locking (the strategy the paper cites as > 40% of
 *     detection cost). CLEAN substitutes a single CAS.
 *
 * Granularity is per byte, matching CLEAN, so precision and cost are
 * directly comparable in the ablation benches.
 */

#ifndef CLEAN_DETECTORS_FASTTRACK_H
#define CLEAN_DETECTORS_FASTTRACK_H

#include <memory>
#include <unordered_map>

#include "detectors/detector.h"

namespace clean::detectors
{

/** Full precise WAW/RAW/WAR FastTrack detector. */
class FastTrackDetector : public Detector
{
  public:
    FastTrackDetector(const EpochConfig &config, ThreadId maxThreads);
    ~FastTrackDetector() override;

    const char *name() const override { return "fasttrack"; }
    bool detectsWar() const override { return true; }

    void onRead(ThreadId t, Addr addr, std::size_t size) override;
    void onWrite(ThreadId t, Addr addr, std::size_t size) override;

  private:
    /** Per-byte analysis state. */
    struct Cell
    {
        /** Epoch of the last write; 0 = never written. */
        EpochValue write = 0;
        /** Last-read epoch while reads are HB-ordered; 0 = none. */
        EpochValue readEpoch = 0;
        /** Promoted read vector clock once reads become concurrent. */
        std::unique_ptr<VectorClock> readVc;
    };

    static constexpr std::size_t kChunkBytes = 4096;

    struct Chunk
    {
        std::mutex lock;
        Cell cells[kChunkBytes];
    };

    Chunk &chunkFor(Addr addr);
    void readByte(ThreadId t, Addr addr, Chunk &chunk);
    void writeByte(ThreadId t, Addr addr, Chunk &chunk);

    std::mutex chunkMapMutex_;
    std::unordered_map<Addr, std::unique_ptr<Chunk>> chunks_;
};

} // namespace clean::detectors

#endif // CLEAN_DETECTORS_FASTTRACK_H
