/**
 * @file
 * Deterministic clock-rollover handling (§4.5).
 *
 * Epoch clocks are narrow (23 bits by default), so long-running programs
 * with frequent synchronization would overflow them. CLEAN avoids the
 * correctness problem by parking the whole execution at the next
 * *globally deterministic point* — every live thread is either trying to
 * execute a synchronization operation, blocked in one, or finished — and
 * then resetting all epochs (O(1) via the shadow's zero-page remap) and
 * all vector clocks before resuming.
 *
 * Per-phase SFR isolation, write-atomicity and determinism compose
 * across resets because resets happen only at SFR boundaries and at
 * deterministic points (under Kendo the set of parked positions is a
 * deterministic function of the input).
 *
 * The controller is host-agnostic: the runtime supplies quiescence
 * queries and the actual reset through RolloverHost.
 *
 * Recovery interaction (ISSUE 3): SFR undo logs hold the shadow epochs
 * a rollback would restore. A reset rewrites every live epoch to 0, so
 * the runtime's reset callback also rewrites each parked thread's
 * pending log epochs to 0 (SfrLog::rewriteEpochsOnReset) — a rollback
 * that straddles a rollover then restores exactly what the reset would
 * have left behind.
 */

#ifndef CLEAN_CORE_ROLLOVER_H
#define CLEAN_CORE_ROLLOVER_H

#include <atomic>
#include <cstdint>
#include <functional>

#include "support/common.h"

namespace clean
{

/** Callbacks the runtime provides to the rollover controller. */
class RolloverHost
{
  public:
    virtual ~RolloverHost() = default;

    /** True iff every live thread other than @p self is parked at a sync
     *  point, blocked in one, or finished. */
    virtual bool allOthersQuiescent(ThreadId self) = 0;

    /** Zero all epochs, vector clocks and reuse bookkeeping. Called with
     *  every thread quiescent. */
    virtual void performReset() = 0;
};

/** Coordinates the park-reset-resume protocol. */
class RolloverController
{
  public:
    explicit RolloverController(RolloverHost &host) : host_(host) {}

    /** Requests a reset; the next poll() of every thread will park. */
    void
    request()
    {
        // seq_cst: the park/resume protocol relies on store-load ordering
        // between this flag and the per-thread phase slots.
        pending_.store(true);
    }

    bool
    pending() const
    {
        return pending_.load();
    }

    /** Number of resets performed so far (Table 1's rollover count). */
    std::uint64_t
    resets() const
    {
        return resets_.load(std::memory_order_relaxed);
    }

    /**
     * Called by thread @p self at every synchronization point, including
     * inside turn-wait loops. If a reset is pending, parks until the
     * reset completes; one parked thread is elected to perform it. The
     * caller must have marked itself Parked in the host's thread table
     * before calling and marks itself Running again after.
     *
     * @p aborted (optional) is polled while parked; when it returns true
     * the wait is abandoned by throwing the AbortedWait marker below (an
     * elected resetter un-claims itself first so a later request can
     * still elect one). The runtime translates the marker into
     * ExecutionAborted.
     */
    void parkAndMaybeReset(ThreadId self,
                           const std::function<bool()> &aborted = {});

    /** Thrown out of parkAndMaybeReset when @p aborted returned true;
     *  the runtime translates it into ExecutionAborted. */
    struct AbortedWait
    {
    };

  private:
    RolloverHost &host_;
    std::atomic<bool> pending_{false};
    std::atomic<bool> resetterClaimed_{false};
    std::atomic<std::uint64_t> resets_{0};
};

} // namespace clean

#endif // CLEAN_CORE_ROLLOVER_H
