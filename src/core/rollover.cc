#include "core/rollover.h"

#include <thread>

namespace clean
{

void
RolloverController::parkAndMaybeReset(ThreadId self)
{
    if (!pending())
        return;
    bool expected = false;
    if (resetterClaimed_.compare_exchange_strong(expected, true)) {
        // Elected: wait until the rest of the world is quiescent, reset,
        // then release everyone.
        while (!host_.allOthersQuiescent(self))
            std::this_thread::yield();
        host_.performReset();
        resets_.fetch_add(1, std::memory_order_relaxed);
        pending_.store(false);
        resetterClaimed_.store(false);
        return;
    }
    // Someone else is resetting; stay parked until they finish.
    while (pending())
        std::this_thread::yield();
}

} // namespace clean
