file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_check.dir/bench_micro_check.cc.o"
  "CMakeFiles/bench_micro_check.dir/bench_micro_check.cc.o.d"
  "bench_micro_check"
  "bench_micro_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
