/**
 * @file
 * ferret — content-based similarity-search pipeline (PARSEC).
 *
 * Stages over a bounded queue: extractors turn "query images" into
 * feature vectors (private compute), rankers scan the shared feature
 * index (read-heavy) and insert candidates into a shared top-K list
 * under a lock. Pipeline parallelism makes per-thread progress very
 * uneven — one of the paper's examples of deterministic-counter
 * imprecision hurting Kendo (Figure 6).
 *
 * Racy variant: the top-K insertion runs without the lock — WAW on the
 * list entries and RAW against concurrent readers of the current
 * minimum.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

constexpr unsigned kFeat = 16;
constexpr unsigned kTopK = 16;

class Ferret : public KernelBase
{
  public:
    Ferret() : KernelBase("ferret", "parsec", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nQueries = scaled(p.scale, 48, 160, 512);
        const std::uint64_t indexSize = scaled(p.scale, 512, 2048, 8192);
        const std::uint64_t queueCap = 32;

        auto *index = env.allocShared<float>(indexSize * kFeat);
        auto *topScore = env.allocShared<float>(kTopK);
        auto *topId = env.allocShared<std::uint32_t>(kTopK);
        auto *queryStat = env.allocShared<std::uint64_t>(1);
        auto *queue = env.allocShared<std::uint64_t>(queueCap * (kFeat + 1));
        auto *qState = env.allocShared<std::uint64_t>(3); // head tail done

        const unsigned qLock = env.createMutex();
        const unsigned qNotEmpty = env.createCond();
        const unsigned qNotFull = env.createCond();
        const unsigned topLock = env.createMutex();

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < indexSize * kFeat; ++i)
                index[i] = static_cast<float>(init.nextDouble());
            for (unsigned k = 0; k < kTopK; ++k) {
                topScore[k] = -1.0f;
                topId[k] = 0;
            }
            qState[0] = qState[1] = qState[2] = 0;
            queryStat[0] = 0;
        }

        const bool racy = p.racy;
        // >= 1 extractor and >= 2 rankers (so racy top-K inserts race).
        const unsigned threads = std::max(3u, p.threads);
        const unsigned nExtractors = std::max(1u, threads / 2);

        env.parallel(threads, [&](Worker &w) {
            if (w.index() < nExtractors) {
                // Extractor: synthesize feature vectors (private
                // compute), push into the queue.
                const Slice s = sliceOf(nQueries, w.index(), nExtractors);
                auto *feat = env.allocPrivate<double>(kFeat);
                for (std::uint64_t q = s.begin; q < s.end; ++q) {
                    // "Decode/extract": iterate a hash into features.
                    std::uint64_t x = p.seed ^ (q * 0x9e3779b9ULL);
                    for (unsigned f = 0; f < kFeat; ++f) {
                        x ^= x >> 33;
                        x *= 0xff51afd7ed558ccdULL;
                        w.writePrivate(&feat[f],
                                       (x >> 11) * 0x1.0p-53);
                        w.compute(20);
                    }
                    w.lock(qLock);
                    while (w.read(&qState[1]) - w.read(&qState[0]) >=
                           queueCap) {
                        w.condWait(qNotFull, qLock);
                    }
                    const std::uint64_t tail = w.read(&qState[1]);
                    std::uint64_t *slot =
                        &queue[(tail % queueCap) * (kFeat + 1)];
                    w.write(&slot[0], q);
                    for (unsigned f = 0; f < kFeat; ++f) {
                        w.write(&slot[1 + f],
                                static_cast<std::uint64_t>(
                                    w.readPrivate(&feat[f]) * 1e9));
                    }
                    w.write(&qState[1], tail + 1);
                    w.condBroadcast(qNotEmpty);
                    w.unlock(qLock);
                }
                w.lock(qLock);
                w.update(&qState[2],
                         [](std::uint64_t v) { return v + 1; });
                w.condBroadcast(qNotEmpty);
                w.unlock(qLock);
                w.sink(s.end - s.begin);
            } else {
                // Ranker: scan the index for each queued query.
                double localBest = 0.0;
                for (;;) {
                    std::uint64_t qid = 0;
                    double feat[kFeat];
                    bool got = false;
                    w.lock(qLock);
                    for (;;) {
                        const std::uint64_t head = w.read(&qState[0]);
                        if (head < w.read(&qState[1])) {
                            const std::uint64_t *slot =
                                &queue[(head % queueCap) * (kFeat + 1)];
                            qid = w.read(&slot[0]);
                            for (unsigned f = 0; f < kFeat; ++f)
                                feat[f] = static_cast<double>(
                                              w.read(&slot[1 + f])) *
                                          1e-9;
                            w.write(&qState[0], head + 1);
                            w.condBroadcast(qNotFull);
                            got = true;
                            break;
                        }
                        if (w.read(&qState[2]) >= nExtractors)
                            break;
                        w.condWait(qNotEmpty, qLock);
                    }
                    w.unlock(qLock);
                    if (!got)
                        break;

                    // Scan the shared index (read-heavy).
                    float best = -1.0f;
                    std::uint32_t bestId = 0;
                    for (std::uint64_t d = 0; d < indexSize; ++d) {
                        double dot = 0.0;
                        for (unsigned f = 0; f < kFeat; ++f)
                            dot += feat[f] *
                                   w.read(&index[d * kFeat + f]);
                        if (dot > best) {
                            best = static_cast<float>(dot);
                            bestId = static_cast<std::uint32_t>(d);
                        }
                        w.compute(kFeat);
                    }
                    localBest = std::max(localBest,
                                         static_cast<double>(best));

                    // Insert into the shared top-K.
                    if (!racy)
                        w.lock(topLock);
                    unsigned minSlot = 0;
                    float minVal = w.read(&topScore[0]);
                    for (unsigned k = 1; k < kTopK; ++k) {
                        const float v = w.read(&topScore[k]);
                        if (v < minVal) {
                            minVal = v;
                            minSlot = k;
                        }
                    }
                    if (best > minVal) {
                        w.write(&topScore[minSlot], best);
                        w.write(&topId[minSlot],
                                static_cast<std::uint32_t>(
                                    qid * 100000 + bestId));
                    }
                    if (!racy)
                        w.unlock(topLock);
                }
                // Final ranked-query count: the racy variant updates it
                // unlocked as the ranker's last shared action, so the
                // WAW between rankers survives any schedule.
                if (racy) {
                    w.update(&queryStat[0],
                             [](std::uint64_t v) { return v + 1; });
                } else {
                    w.lock(topLock);
                    w.update(&queryStat[0],
                             [](std::uint64_t v) { return v + 1; });
                    w.unlock(topLock);
                }
                w.sink(static_cast<std::uint64_t>(localBest * 1e6));
            }
        });

        env.declareOutput(topId, kTopK * sizeof(std::uint32_t));
    }
};

} // namespace

std::unique_ptr<Workload>
makeFerret()
{
    return std::make_unique<Ferret>();
}

} // namespace clean::wl::suite
