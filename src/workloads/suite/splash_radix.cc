/**
 * @file
 * radix — parallel LSD radix sort (SPLASH-2).
 *
 * Per digit: local histogram over the thread's slice (private), a
 * barrier, a prefix-sum of the global rank matrix by thread 0, another
 * barrier, then the permutation: every key is written to its destination
 * in the shared output array — the scattered-write pattern that gives
 * radix its high LLC miss rate (a Figure 11 worst case for 4-byte
 * epochs).
 *
 * Racy variant: the per-(thread,digit) rank cells are updated through a
 * shared cursor array indexed only by digit — threads collide on the
 * cursor (unsynchronized RMW -> WAW) and consequently on output slots.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Radix : public KernelBase
{
  public:
    Radix() : KernelBase("radix", "splash2", true) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t n = scaled(p.scale, 1 << 12, 1 << 15, 1 << 18);
        const unsigned radixBits = 8;
        const unsigned buckets = 1u << radixBits;
        const unsigned digits = 32 / radixBits;

        auto *src = env.allocShared<std::uint32_t>(n);
        auto *dst = env.allocShared<std::uint32_t>(n);
        // rank[t][b]: running output cursor of bucket b for thread t.
        auto *rank = env.allocShared<std::uint64_t>(
            static_cast<std::uint64_t>(p.threads) * buckets);
        // racy variant: one global cursor per bucket.
        auto *globalCursor = env.allocShared<std::uint64_t>(buckets);
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < n; ++i)
                src[i] = static_cast<std::uint32_t>(init.next());
        }

        const bool racy = p.racy;
        env.parallel(p.threads, [&](Worker &w) {
            const unsigned self = w.index();
            const unsigned nt = w.count();
            const Slice slice = sliceOf(n, self, nt);
            // Per-thread histogram: stack-like private data, accessed
            // through the private shim so the simulator sees its cache
            // traffic (Figure 10's "private" category).
            auto *hist = env.allocPrivate<std::uint64_t>(buckets);

            std::uint32_t *from = src;
            std::uint32_t *to = dst;
            for (unsigned d = 0; d < digits; ++d) {
                const unsigned shift = d * radixBits;
                for (unsigned b = 0; b < buckets; ++b)
                    w.writePrivate(&hist[b], std::uint64_t{0});
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const std::uint32_t key = w.read(&from[i]);
                    const unsigned b = (key >> shift) & (buckets - 1);
                    w.writePrivate(&hist[b],
                                   w.readPrivate(&hist[b]) + 1);
                    w.compute(2);
                }
                for (unsigned b = 0; b < buckets; ++b)
                    w.write(&rank[self * buckets + b],
                            w.readPrivate(&hist[b]));
                w.barrier(phase);

                // Thread 0 turns counts into starting cursors
                // (column-major prefix over (bucket, thread)).
                if (self == 0) {
                    std::uint64_t running = 0;
                    for (unsigned b = 0; b < buckets; ++b) {
                        // After this pass rank[0][b] is the bucket base.
                        for (unsigned t = 0; t < nt; ++t) {
                            const std::uint64_t c =
                                w.read(&rank[t * buckets + b]);
                            w.write(&rank[t * buckets + b], running);
                            running += c;
                        }
                        if (racy) {
                            w.write(&globalCursor[b],
                                    w.read(&rank[0 * buckets + b]));
                        }
                    }
                }
                w.barrier(phase);

                // Permute.
                for (std::uint64_t i = slice.begin; i < slice.end; ++i) {
                    const std::uint32_t key = w.read(&from[i]);
                    const unsigned b = (key >> shift) & (buckets - 1);
                    std::uint64_t pos;
                    if (racy) {
                        // Shared per-bucket cursor without a lock:
                        // unsynchronized RMW (WAW), colliding slots.
                        pos = w.read(&globalCursor[b]);
                        w.write(&globalCursor[b], pos + 1);
                    } else {
                        pos = w.read(&rank[self * buckets + b]);
                        w.write(&rank[self * buckets + b], pos + 1);
                    }
                    w.write(&to[pos], key);
                    w.compute(3);
                }
                w.barrier(phase);
                std::swap(from, to);
            }

            std::uint64_t h = 0;
            for (std::uint64_t i = slice.begin; i < slice.end;
                 i += 1 + (slice.end - slice.begin) / 128) {
                h = h * 31 + w.read(&from[i]);
            }
            w.sink(h);
        });

        env.declareOutput(src, n * sizeof(std::uint32_t));
    }
};

} // namespace

std::unique_ptr<Workload>
makeRadix()
{
    return std::make_unique<Radix>();
}

} // namespace clean::wl::suite
