file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hw_fastpath.dir/bench_ablation_hw_fastpath.cc.o"
  "CMakeFiles/bench_ablation_hw_fastpath.dir/bench_ablation_hw_fastpath.cc.o.d"
  "bench_ablation_hw_fastpath"
  "bench_ablation_hw_fastpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hw_fastpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
