/**
 * @file
 * Tiny command-line / environment option parser used by benches and
 * examples.
 *
 * Syntax: --name=value or --name value or bare --flag (boolean true).
 * Environment fallback: option "threads" also reads CLEAN_THREADS.
 */

#ifndef CLEAN_SUPPORT_OPTIONS_H
#define CLEAN_SUPPORT_OPTIONS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clean
{

/** Parsed option bag with typed getters and defaults. */
class Options
{
  public:
    Options() = default;

    /** Parses argv; unrecognized positional arguments are kept in order. */
    static Options parse(int argc, char **argv);

    /** True when --name was given (with or without a value). */
    bool has(const std::string &name) const;

    std::string getString(const std::string &name,
                          const std::string &def = "") const;
    std::int64_t getInt(const std::string &name, std::int64_t def) const;
    double getDouble(const std::string &name, double def) const;
    bool getBool(const std::string &name, bool def = false) const;

    /** Positional (non --option) arguments in order. */
    const std::vector<std::string> &positional() const { return positional_; }

    /** Manually inject an option (used by tests). */
    void set(const std::string &name, const std::string &value);

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positional_;
};

} // namespace clean

#endif // CLEAN_SUPPORT_OPTIONS_H
