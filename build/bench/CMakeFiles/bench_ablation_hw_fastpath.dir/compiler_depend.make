# Empty compiler generated dependencies file for bench_ablation_hw_fastpath.
# This may be replaced when dependencies are built.
