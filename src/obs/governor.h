/**
 * @file
 * Adaptive sampling governor for the --overhead-budget SLO mode (§15).
 *
 * Consumes the per-thread boundary reports the runtime produces from
 * its obs timing (wall nanoseconds and reads retired per SFR-boundary
 * interval, split into normal and calibration intervals) and publishes
 * one global admission *level* for the SampleGate ladder. The control
 * loop is physical — EWMAs of measured ns/read — which is exactly why
 * its only output is adopted at deterministic points and recorded in
 * the trace (SampleLevel events): replay runs the governor inert and
 * re-adopts the recorded levels, keeping budgeted runs bit-identical.
 *
 * The budget is enforced against the *controllable* overhead: the cost
 * of the checks the gate can shed, measured as
 *
 *     overhead = (normalNsPerRead - calibNsPerRead) / calibNsPerRead
 *
 * where the calibration floor comes from periodic shed-everything SFRs
 * (the gate cannot remove the instrumentation shim itself, so the shim
 * cost is the denominator, not part of the budgeted numerator).
 *
 * Quarantine ledger: regions a thread's gate strikes out locally are
 * reported here and recorded in a recover::RecoveryManager (the PR 3
 * quarantine machinery) with maxRecoveries = 0 — the strike
 * thresholding already happened deterministically in the gate, so
 * every reported region goes straight into the ledger's quarantine
 * set, which failure reports list sorted. The ledger consumes only
 * deterministic inputs and therefore stays active on replay.
 *
 * Compiled into clean_core (not clean_obs): the ledger's sorted
 * listing lives in recover/recovery.cc.
 */

#ifndef CLEAN_OBS_GOVERNOR_H
#define CLEAN_OBS_GOVERNOR_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/sampling.h"
#include "recover/recovery.h"
#include "support/common.h"

namespace clean::obs
{

/** Governor tunables (derived from RuntimeConfig in runtime.cc). */
struct GovernorConfig
{
    /** Target controllable overhead in percent (1..99; 100 and 0 turn
     *  sampling off upstream and never reach the governor). */
    std::uint32_t budgetPct = 10;
    /** Fail-safe cold-start level (SampleGate::levelForBudget): the
     *  published level before any measurement arrives. */
    std::uint32_t initialLevel = 0;
    /** When false (replay), measurement reports are ignored and the
     *  published level never moves — threads adopt recorded levels. */
    bool active = true;
};

class SamplingGovernor
{
  public:
    explicit SamplingGovernor(const GovernorConfig &config)
        : config_(config),
          level_(std::min(config.initialLevel, SampleGate::kMaxLevel)),
          ledger_(recover::RecoveryConfig{/*maxRecoveries=*/0,
                                          /*attemptsPerEpisode=*/1})
    {
    }

    /**
     * One thread's SFR-boundary interval: @p reads shared reads retired
     * in @p ns wall nanoseconds; @p calib marks a calibration interval
     * (every read shed — the floor measurement). Ignored when inactive
     * or too small to be meaningful.
     */
    void report(std::uint64_t reads, std::uint64_t ns, bool calib);

    /** A region the reporting thread's gate just quarantined locally
     *  (deterministic input; active on replay too, so ledgers match).
     *  @p regionOffset is the region's heap-relative byte offset. */
    void
    noteQuarantine(Addr regionOffset)
    {
        ledger_.admitEpisode(regionOffset);
    }

    /** The published admission level (SampleGate ladder index). */
    std::uint32_t
    level() const
    {
        return level_.load(std::memory_order_relaxed);
    }

    /** Quarantined region offsets, sorted (deterministic). */
    std::vector<Addr>
    quarantinedRegions() const
    {
        return ledger_.quarantinedSites();
    }

    std::uint64_t
    quarantinedCount() const
    {
        return ledger_.stats().quarantinedSites;
    }

    /** Measured controllable overhead over the run so far, in permille
     *  (physical; telemetry only — never part of deterministic
     *  reports): the reads-weighted mean of each normal interval's
     *  overhead above the calibration floor. A run statistic, not a
     *  snapshot of the control EWMAs — an end-of-run caller gets the
     *  budget contract's actual subject, the average cost paid, rather
     *  than whatever transient the run ended on. -1 until a
     *  calibration floor exists. */
    std::int64_t overheadPermille() const;

  private:
    void maybeAdjustLocked();

    GovernorConfig config_;
    std::atomic<std::uint32_t> level_{0};
    mutable std::mutex m_;
    double normalNsPerRead_ = 0.0;
    double calibNsPerRead_ = 0.0;
    bool haveNormal_ = false;
    bool haveCalib_ = false;
    std::uint32_t reportsSinceAdjust_ = 0;
    /** Consecutive under-budget adjustment epochs (down-step patience). */
    std::uint32_t belowStreak_ = 0;
    /** Reads-weighted run-mean overhead accumulator (overheadPermille). */
    double meanOverheadNum_ = 0.0;
    double meanOverheadDen_ = 0.0;
    recover::RecoveryManager ledger_;
};

} // namespace clean::obs

#endif // CLEAN_OBS_GOVERNOR_H
