#include "core/race_check.h"

#include <algorithm>

#include "core/linear_shadow.h"
#include "core/sparse_shadow.h"

// The batched drain upgrades the 16B scan to 32B AVX2 compares where the
// CPU has them. Dispatch is a one-time cpuid probe rather than a global
// -mavx2: the inline per-access paths keep their baseline codegen, and
// the binary still runs on pre-AVX2 parts. Honors the same configure-time
// CLEAN_SIMD_CHECK switch as the inline scan.
#if CLEAN_SIMD_CHECK_SSE2 && defined(__x86_64__)
#define CLEAN_SIMD_DRAIN_AVX2 1
#include <immintrin.h>
#endif

namespace clean
{

namespace
{

/** 16-byte CAS publishing 4 epochs at once (cmpxchg16b on x86-64). */
bool
cas128(EpochValue *slots, EpochValue seen, EpochValue newEpoch)
{
    using U128 = unsigned __int128;
    U128 expected = 0, desired = 0;
    for (int i = 0; i < 4; ++i) {
        expected |= static_cast<U128>(seen) << (32 * i);
        desired |= static_cast<U128>(newEpoch) << (32 * i);
    }
    auto *wide = reinterpret_cast<U128 *>(slots);
    return __atomic_compare_exchange_n(wide, &expected, desired, false,
                                       __ATOMIC_RELAXED, __ATOMIC_RELAXED);
}

/** 8-byte CAS publishing 2 epochs at once. */
bool
cas64(EpochValue *slots, EpochValue seen, EpochValue newEpoch)
{
    std::uint64_t expected =
        (static_cast<std::uint64_t>(seen) << 32) | seen;
    const std::uint64_t desired =
        (static_cast<std::uint64_t>(newEpoch) << 32) | newEpoch;
    auto *wide = reinterpret_cast<std::uint64_t *>(slots);
    return __atomic_compare_exchange_n(wide, &expected, desired, false,
                                       __ATOMIC_RELAXED, __ATOMIC_RELAXED);
}

bool
cas32(EpochValue *slot, EpochValue seen, EpochValue newEpoch)
{
    return __atomic_compare_exchange_n(slot, &seen, newEpoch, false,
                                       __ATOMIC_RELAXED, __ATOMIC_RELAXED);
}

/**
 * Length of the leading stretch of @p slots all holding @p value — the
 * drain's segmenting primitive (one Figure 2 check covers a whole
 * uniform stretch). Software-prefetches ahead of the walk: drained runs
 * are typically streamed spans whose shadow is cold by drain time.
 */
std::size_t
scanEqualPortable(const EpochValue *slots, std::size_t n, EpochValue value)
{
    std::size_t i = 0;
#if CLEAN_SIMD_CHECK_SSE2
    const __m128i needle = _mm_set1_epi32(static_cast<int>(value));
    for (; i + 4 <= n; i += 4) {
        if ((i & 63) == 0)
            __builtin_prefetch(slots + i + 256);
        const __m128i a = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(slots + i));
        const unsigned eq = static_cast<unsigned>(
            _mm_movemask_epi8(_mm_cmpeq_epi32(a, needle)));
        if (eq != 0xffffu)
            return i + static_cast<std::size_t>(
                           __builtin_ctz(~eq & 0xffffu)) / 4;
    }
#elif CLEAN_SIMD_CHECK_NEON
    const uint32x4_t needle = vdupq_n_u32(value);
    for (; i + 4 <= n; i += 4) {
        if ((i & 63) == 0)
            __builtin_prefetch(slots + i + 256);
        const uint32x4_t eq = vceqq_u32(vld1q_u32(slots + i), needle);
        if (vminvq_u32(eq) != ~0u)
            break; // the scalar loop below pinpoints the mismatch
    }
#endif
    for (; i < n; ++i) {
        if (__atomic_load_n(slots + i, __ATOMIC_RELAXED) != value)
            return i;
    }
    return n;
}

#if CLEAN_SIMD_DRAIN_AVX2
__attribute__((target("avx2"))) std::size_t
scanEqualAvx2(const EpochValue *slots, std::size_t n, EpochValue value)
{
    std::size_t i = 0;
    const __m256i needle = _mm256_set1_epi32(static_cast<int>(value));
    for (; i + 16 <= n; i += 16) {
        __builtin_prefetch(slots + i + 256);
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(slots + i));
        const __m256i b = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(slots + i + 8));
        const __m256i eq = _mm256_and_si256(_mm256_cmpeq_epi32(a, needle),
                                            _mm256_cmpeq_epi32(b, needle));
        if (_mm256_movemask_epi8(eq) != -1) {
            const unsigned ma = static_cast<unsigned>(
                _mm256_movemask_epi8(_mm256_cmpeq_epi32(a, needle)));
            if (ma != 0xffffffffu)
                return i + static_cast<std::size_t>(
                               __builtin_ctz(~ma)) / 4;
            const unsigned mb = static_cast<unsigned>(
                _mm256_movemask_epi8(_mm256_cmpeq_epi32(b, needle)));
            return i + 8 + static_cast<std::size_t>(
                               __builtin_ctz(~mb)) / 4;
        }
    }
    for (; i + 8 <= n; i += 8) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(slots + i));
        const unsigned m = static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi32(a, needle)));
        if (m != 0xffffffffu)
            return i + static_cast<std::size_t>(__builtin_ctz(~m)) / 4;
    }
    for (; i < n; ++i) {
        if (__atomic_load_n(slots + i, __ATOMIC_RELAXED) != value)
            return i;
    }
    return n;
}
#endif

std::size_t
scanEqualRun(const EpochValue *slots, std::size_t n, EpochValue value)
{
#if CLEAN_SIMD_DRAIN_AVX2
    static const bool haveAvx2 = __builtin_cpu_supports("avx2");
    if (CLEAN_LIKELY(haveAvx2))
        return scanEqualAvx2(slots, n, value);
#endif
    return scanEqualPortable(slots, n, value);
}

} // namespace

template <class ShadowT>
void
RaceChecker<ShadowT>::readRun(ThreadState &ts, Addr addr,
                              EpochValue *slots, std::size_t n)
{
    if (config_.vectorized && n >= 4) {
        // Common case (§4.4): every byte of the access carries one epoch,
        // so a single comparison covers the whole access.
        if (allEqual(slots, n)) {
            ts.stats.wideSameEpoch++;
            checkEpoch(ts, addr, loadEpoch(slots), RaceKind::Raw);
            return;
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        checkEpoch(ts, addr + i, loadEpoch(slots + i), RaceKind::Raw);
}

template <class ShadowT>
void
RaceChecker<ShadowT>::writeRun(ThreadState &ts, Addr addr,
                               EpochValue *slots, std::size_t n)
{
    if (config_.atomicity == AtomicityMode::Locked)
        writeRunLocked(ts, addr, slots, n);
    else
        writeRunCas(ts, addr, slots, n);
}

template <class ShadowT>
void
RaceChecker<ShadowT>::writeRunCas(ThreadState &ts, Addr addr,
                                  EpochValue *slots, std::size_t n)
{
    const EpochValue newEpoch = ts.ownEpoch;
    if (config_.vectorized && n >= 4 && (addr & 3) == 0 && (n & 3) == 0) {
        if (allEqual(slots, n)) {
            ts.stats.wideSameEpoch++;
            const EpochValue seen = loadEpoch(slots);
            checkEpoch(ts, addr, seen, RaceKind::Waw);
            if (seen != newEpoch) {
                ts.stats.epochUpdates++;
                publishWide(ts, addr, slots, n, seen, newEpoch);
            }
            return;
        }
    }
    publishBytes(ts, addr, slots, n, newEpoch);
}

template <class ShadowT>
void
RaceChecker<ShadowT>::writeRunLocked(ThreadState &ts, Addr addr,
                                     EpochValue *slots, std::size_t n)
{
    // Ablation path: serialize conflicting checks with a per-line lock,
    // the strategy the paper cites as costing > 40% of detection time in
    // precise detectors. Accesses never span more than two shards here
    // (n <= 64 in practice); lock both in address order to stay
    // deadlock-free.
    std::mutex &first = shardLocks_.forAddr(addr);
    std::mutex &second = shardLocks_.forAddr(addr + n - 1);
    const bool twoShards = &first != &second;
    first.lock();
    if (twoShards)
        second.lock();
    // With the lock held the plain Figure 2 sequence is safe.
    const EpochValue newEpoch = ts.ownEpoch;
    try {
        for (std::size_t i = 0; i < n; ++i) {
            const EpochValue seen = loadEpoch(slots + i);
            checkEpoch(ts, addr + i, seen, RaceKind::Waw);
            if (seen != newEpoch) {
                ts.stats.epochUpdates++;
                __atomic_store_n(slots + i, newEpoch, __ATOMIC_RELAXED);
            }
        }
    } catch (...) {
        if (twoShards)
            second.unlock();
        first.unlock();
        throw;
    }
    if (twoShards)
        second.unlock();
    first.unlock();
}

template <class ShadowT>
void
RaceChecker<ShadowT>::publishWide(ThreadState &ts, Addr addr,
                                  EpochValue *slots, std::size_t n,
                                  EpochValue seen, EpochValue newEpoch)
{
    std::size_t i = 0;
    // 16-byte CAS requires 16-byte-aligned slots: true whenever the data
    // address is 4-byte aligned (slot address = shadow base + 4 * offset).
    const bool aligned16 =
        (reinterpret_cast<std::uintptr_t>(slots) & 15) == 0;
    while (i + 4 <= n && aligned16) {
        if (!cas128(slots + i, seen, newEpoch))
            throwRace(ts, addr + i, seen, RaceKind::Waw);
        ts.stats.wideCasUpdates++;
        i += 4;
    }
    while (i + 2 <= n) {
        if (!cas64(slots + i, seen, newEpoch))
            throwRace(ts, addr + i, seen, RaceKind::Waw);
        i += 2;
    }
    for (; i < n; ++i) {
        if (!cas32(slots + i, seen, newEpoch))
            throwRace(ts, addr + i, seen, RaceKind::Waw);
    }
}

template <class ShadowT>
void
RaceChecker<ShadowT>::publishBytes(ThreadState &ts, Addr addr,
                                   EpochValue *slots, std::size_t n,
                                   EpochValue newEpoch)
{
    for (std::size_t i = 0; i < n; ++i) {
        const EpochValue seen = loadEpoch(slots + i);
        checkEpoch(ts, addr + i, seen, RaceKind::Waw);
        if (seen == newEpoch)
            continue;
        ts.stats.epochUpdates++;
        if (!cas32(slots + i, seen, newEpoch)) {
            // Another thread published a conflicting epoch between our
            // load and the CAS: a concurrent unordered write — WAW.
            throwRace(ts, addr + i, seen, RaceKind::Waw);
        }
    }
}

template <class ShadowT>
void
RaceChecker<ShadowT>::readGranular(ThreadState &ts, Addr addr,
                                   std::size_t size)
{
    const unsigned g = config_.granuleLog2;
    const Addr first = addr >> g;
    const Addr last = (addr + (size ? size - 1 : 0)) >> g;
    for (Addr u = first; u <= last; ++u)
        checkEpoch(ts, u, loadEpoch(shadow_.slots(u << g)),
                   RaceKind::Raw);
}

template <class ShadowT>
void
RaceChecker<ShadowT>::writeGranular(ThreadState &ts, Addr addr,
                                    std::size_t size)
{
    const unsigned g = config_.granuleLog2;
    const Addr first = addr >> g;
    const Addr last = (addr + (size ? size - 1 : 0)) >> g;
    const EpochValue newEpoch = ts.ownEpoch;
    for (Addr u = first; u <= last; ++u) {
        EpochValue *slot = shadow_.slots(u << g);
        const EpochValue seen = loadEpoch(slot);
        checkEpoch(ts, u, seen, RaceKind::Waw);
        if (seen == newEpoch)
            continue;
        ts.stats.epochUpdates++;
        if (!cas32(slot, seen, newEpoch)) {
            throwRace(ts, u, seen, RaceKind::Waw);
        }
    }
}

template <class ShadowT>
void
RaceChecker<ShadowT>::drainRun(ThreadState &ts, const BatchBuffer::Run &r)
{
    BatchBuffer &b = ts.batch;
    std::size_t off = b.cursorOff;
    while (off < r.bytes) {
        const Addr addr = r.addr + off;
        const std::size_t chunk = std::min<std::size_t>(
            r.bytes - off, shadow_.contiguousSlots(addr));
        EpochValue *slots = shadow_.slots(addr);
        std::size_t i = 0;
        while (i < chunk) {
            const EpochValue seen = loadEpoch(slots + i);
            const std::size_t seg = scanEqualRun(slots + i, chunk - i, seen);
            // One Figure 2 check retires the whole uniform stretch. The
            // vector clock is the one the buffered reads executed under:
            // drains run strictly before the boundary's join/tick.
            const EpochValue epoch = seen & epochMask_;
            const ThreadId writer = config_.epoch.tidOf(epoch);
            if (CLEAN_UNLIKELY(epoch > ts.vc.element(writer))) {
                // Every byte of the stretch is racy; report the first
                // buffered access covering it and park the cursor past
                // that access so a non-aborting caller can resume.
                const std::size_t racyOff = off + i;
                const std::uint64_t access = racyOff / r.sizeEach;
                b.cursorOff = static_cast<std::uint32_t>(
                    (access + 1) * static_cast<std::uint64_t>(r.sizeEach));
                throwRaceAt(ts, r.addr + racyOff, epoch, RaceKind::Raw,
                            r.firstSite + access, r.sfrOrdinal);
            }
            // Fig. 8 faithfulness: credit wideSameEpoch for each wide
            // access whose bytes fell entirely inside this uniform
            // stretch — the accesses the inline scan would have counted.
            if (r.sizeEach >= 4) {
                const std::size_t segStart = off + i;
                const std::size_t segEnd = off + i + seg;
                const std::size_t firstAcc =
                    (segStart + r.sizeEach - 1) / r.sizeEach;
                const std::size_t endAcc = segEnd / r.sizeEach;
                if (endAcc > firstAcc)
                    ts.stats.wideSameEpoch += endAcc - firstAcc;
            }
            i += seg;
        }
        off += chunk;
    }
}

template <class ShadowT>
void
RaceChecker<ShadowT>::drainBatch(ThreadState &ts)
{
    BatchBuffer &b = ts.batch;
    if (b.cursor >= b.count) {
        b.clear();
        return;
    }
    ts.stats.batchDrains++;
    while (b.cursor < b.count) {
        const BatchBuffer::Run &r = b.runs[b.cursor];
        const std::uint32_t startOff = b.cursorOff;
        drainRun(ts, r); // throws with the cursor advanced on a race
        // Per-access byte/width accounting deferred off the append hot
        // path: settled exactly once per run, when it retires.
        ts.stats.accessedBytes += r.bytes;
        if (r.sizeEach >= 4)
            ts.stats.wideAccesses += r.bytes / r.sizeEach;
        ts.stats.batchDrainedBytes += r.bytes - startOff;
        ts.stats.batchRunBytes.add(r.bytes);
        b.cursor++;
        b.cursorOff = 0;
    }
    b.clear();
}

template class RaceChecker<LinearShadow>;
template class RaceChecker<SparseShadow>;

} // namespace clean
