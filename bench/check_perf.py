#!/usr/bin/env python3
"""Perf-regression gate for the checker micro-benchmarks.

Compares a google-benchmark JSON result (produced with
``--benchmark_repetitions=N --benchmark_report_aggregates_only=true``)
against a committed baseline and fails (exit 1) if any gated
benchmark's median regresses by more than the threshold (default 25%).

Two gates, selected with ``--gate``:

``microcheck`` (default, baseline ``bench/baseline_microcheck.json``,
result from ``bench_micro_check``) covers the inline per-access fast
paths:

  * BM_ReadCheckSameEpoch8B / BM_WriteCheckSameEpoch8B — the
    ownership-cache hit path (owned-line re-access, the common case);
  * BM_ReadCheckSameEpoch8B_NoOwnCache /
    BM_WriteCheckSameEpoch8B_NoOwnCache — the same-epoch shadow fast
    path with the cache ablated (`--no-own-cache`, and the path every
    first touch of a line takes);
  * BM_ReadCheckOwnedMiss8B — the cache's conflict-miss path
    (direct-mapped eviction + re-claim on every access);
  * BM_WriteCheckFlushStorm8B — a generation flush before every
    access (the pathological sync-per-access workload).

``batch`` (baseline ``bench/baseline_batch.json``, result from
``bench_batch``) covers the batched SFR-boundary read path:

  * BM_StreamRead8B_Batch/262144 — streaming append + drain with the
    shadow working set cache-resident (must stay at or below the
    ownership-cache hit lane);
  * BM_StreamRead8B_Batch/1048576 — the same with the drain walking
    shadow out of L3 (bandwidth-bound regime);
  * BM_ReadOwnCacheHit8B — the inline hit lane measured in the same
    binary, the comparison's denominator;
  * BM_BatchDrainThroughput/65536 — wide-scan walk rate at the
    default batch-bytes window;
  * BM_ScatterRead8B_Batch — the non-coalescable worst case (one run
    table entry per access).

Medians are compared rather than means because CI runners are noisy
and a single descheduled repetition should not trip the gate.

Usage:
  python3 bench/check_perf.py --baseline bench/baseline_microcheck.json \
      --result build/bench_result.json [--threshold 0.25] [--gate batch]

Stdlib only; no third-party imports.
"""

import argparse
import json
import sys

GATES = {
    "microcheck": (
        "BM_ReadCheckSameEpoch8B",
        "BM_WriteCheckSameEpoch8B",
        "BM_ReadCheckSameEpoch8B_NoOwnCache",
        "BM_WriteCheckSameEpoch8B_NoOwnCache",
        "BM_ReadCheckOwnedMiss8B",
        "BM_WriteCheckFlushStorm8B",
    ),
    "batch": (
        "BM_StreamRead8B_Batch/262144",
        "BM_StreamRead8B_Batch/1048576",
        "BM_ReadOwnCacheHit8B",
        "BM_BatchDrainThroughput/65536",
        "BM_ScatterRead8B_Batch",
    ),
}

# Backwards-compatible alias (the unit tests and older callers import
# the default gate's tuple under its original name).
GATED = GATES["microcheck"]


def load_medians(path):
    """Map benchmark base name -> median real_time in ns."""
    with open(path) as f:
        doc = json.load(f)
    medians = {}
    for bench in doc.get("benchmarks", []):
        # Aggregate rows are named "<name>_median" with run_type
        # "aggregate"; plain repetition rows are skipped.
        if bench.get("aggregate_name") != "median":
            continue
        base = bench.get("run_name", bench["name"].rsplit("_", 1)[0])
        # run_name may carry "/repeats:N"-style decorations (any
        # "key:value" path component); strip only those. Arg suffixes
        # ("BM_X/64" vs "BM_X/4096") are distinct benchmarks and must
        # stay distinct keys — collapsing them made the gate silently
        # compare whichever arg variant came last.
        base = "/".join(p for p in base.split("/") if ":" not in p)
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        if base in medians:
            raise SystemExit(
                f"check_perf: duplicate benchmark key '{base}' in {path} "
                "(two result rows collapsed to one gate key)")
        medians[base] = bench["real_time"] * scale
    return medians


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--result", required=True)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max allowed fractional regression")
    parser.add_argument("--gate", choices=sorted(GATES), default="microcheck",
                        help="which gated benchmark set to compare")
    args = parser.parse_args()

    baseline = load_medians(args.baseline)
    result = load_medians(args.result)

    failed = False
    for name in GATES[args.gate]:
        if name not in baseline:
            print(f"FAIL {name}: missing from baseline {args.baseline}")
            failed = True
            continue
        if name not in result:
            print(f"FAIL {name}: missing from result {args.result} "
                  "(did the benchmark run with --benchmark_repetitions "
                  "and report_aggregates_only?)")
            failed = True
            continue
        base = baseline[name]
        now = result[name]
        delta = (now - base) / base
        status = "FAIL" if delta > args.threshold else "ok"
        print(f"{status:4s} {name}: baseline {base:.3f} ns, "
              f"now {now:.3f} ns ({delta:+.1%}, "
              f"limit +{args.threshold:.0%})")
        if delta > args.threshold:
            failed = True

    if failed:
        print()
        print(f"Gated '{args.gate}' benchmark medians regressed past "
              "the limit.")
        print("If this slowdown is intentional (e.g. the check itself "
              f"changed), apply the 'perf-override' label to the PR and "
              f"update {args.baseline} in the same change.")
        return 1
    print(f"perf gate ({args.gate}): all gated benchmarks within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
