/**
 * @file
 * Many-core contention sweep (this PR): where does the checker's
 * metadata path stop scaling?
 *
 * Three layers, each swept 1→64 threads:
 *
 *   * `BM_Index*` — the sparse-shadow chunk index alone. The
 *     `LockFree` lanes exercise the shipped open-addressed atomic
 *     table (DESIGN.md §16); the `MutexShard` lanes re-implement the
 *     predecessor design (16 mutex+map shards, same 1-entry
 *     thread-local cache) as an in-bench ablation. Kernels: `Stream`
 *     (sequential bytes, cache-friendly), `Stride` (one chunk per
 *     access over thread-private keys — every access is an index
 *     lookup), `Conflict` (all threads rotate over the *same* 16
 *     chunks — the shard-contention worst case the lock-free table
 *     exists to kill).
 *   * `BM_CheckerStreamBatch` — the full batched read-check path over
 *     one shared SparseShadow: per-thread streaming reads, overflow
 *     drains included. items/s is aggregate checked accesses per
 *     second across threads.
 *   * `BM_SimCheckedAccessRate` — the §6.3.1 timing model with the
 *     CLEAN hardware unit, cores = trace threads, swept to 64 (the
 *     machine previously only ever ran the paper's 8-core point).
 *     Manual time is simulated time, so this lane reports the
 *     *model's* aggregate checked-access rate, independent of how
 *     many physical CPUs the host has — the honest scaling column on
 *     a small CI box.
 *
 * `BM_RuntimeDrain{Inline,Async}` is the --async-check ablation: one
 * app thread streaming through SFR boundaries with the drain retired
 * inline vs on the dedicated checker thread.
 *
 * The NUMA column: `ConflictLockFreeNuma` materialises every chunk
 * from the accessing thread (first-touch-local placement, the shipped
 * allocation policy), where plain `ConflictLockFree` pre-materialises
 * the working set from thread 0 (the placement the old design got by
 * accident). On a single-node host the two coincide; on a multi-node
 * machine the gap is the remote-access tax.
 *
 * Emits BENCH_scale.json via --benchmark_out; the 4-thread smoke of
 * the gated lanes is compared by check_perf.py --gate scale (per-access
 * ns, never wall time).
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/race_check.h"
#include "core/runtime.h"
#include "core/sparse_shadow.h"
#include "core/sync_objects.h"
#include "core/thread_state.h"
#include "sim/machine.h"
#include "workloads/runner.h"

namespace clean
{
namespace
{

constexpr Addr kBase = 0x200000000;
constexpr std::size_t kChunkBytes = SparseShadow::kChunkBytes;

// ---------------------------------------------------------------------
// The predecessor index: 16 mutex+map shards. Kept bench-local — the
// ablation must stay measurable after the shipped design moved on.
// ---------------------------------------------------------------------

class MutexShardShadow
{
  public:
    EpochValue *
    slots(Addr addr)
    {
        const Addr key = addr / kChunkBytes;
        if (cachedOwner_ == this && cachedKey_ == key)
            return cachedChunk_ + (addr & (kChunkBytes - 1));
        Shard &shard = shards_[key & (kShards - 1)];
        EpochValue *chunk = nullptr;
        {
            std::lock_guard<std::mutex> guard(shard.mu);
            auto &slot = shard.map[key];
            if (!slot)
                slot = std::make_unique<EpochValue[]>(kChunkBytes);
            chunk = slot.get();
        }
        cachedOwner_ = this;
        cachedKey_ = key;
        cachedChunk_ = chunk;
        return chunk + (addr & (kChunkBytes - 1));
    }

  private:
    static constexpr unsigned kShards = 16;
    struct Shard
    {
        std::mutex mu;
        std::unordered_map<Addr, std::unique_ptr<EpochValue[]>> map;
    };
    Shard shards_[kShards];
    static thread_local const MutexShardShadow *cachedOwner_;
    static thread_local Addr cachedKey_;
    static thread_local EpochValue *cachedChunk_;
};

thread_local const MutexShardShadow *MutexShardShadow::cachedOwner_ =
    nullptr;
thread_local Addr MutexShardShadow::cachedKey_ = 0;
thread_local EpochValue *MutexShardShadow::cachedChunk_ = nullptr;

// ---------------------------------------------------------------------
// Index kernels. Thread 0 owns the shared instance (google-benchmark
// runs thread 0's pre-loop code before any thread enters the loop).
// ---------------------------------------------------------------------

/** Sequential bytes inside thread-private chunks: the thread-local
 *  cache absorbs almost everything; this bounds the index's overhead
 *  on well-behaved streaming kernels. */
template <class Index>
void
indexStream(benchmark::State &state)
{
    static std::unique_ptr<Index> shadow;
    if (state.thread_index() == 0)
        shadow = std::make_unique<Index>();
    const Addr base =
        kBase + Addr{static_cast<unsigned>(state.thread_index())} * 8 *
                    kChunkBytes;
    Addr a = base;
    for (auto _ : state) {
        benchmark::DoNotOptimize(shadow->slots(a));
        a += 8;
        if (a >= base + 4 * kChunkBytes)
            a = base;
    }
    state.SetItemsProcessed(state.iterations());
    if (state.thread_index() == 0)
        shadow.reset();
}

/** One chunk per access over thread-private keys: defeats the
 *  thread-local cache, so every access is a full index lookup, but
 *  with zero key sharing across threads. */
template <class Index>
void
indexStride(benchmark::State &state)
{
    static std::unique_ptr<Index> shadow;
    if (state.thread_index() == 0)
        shadow = std::make_unique<Index>();
    constexpr unsigned kChunks = 32;
    const Addr base =
        kBase + Addr{static_cast<unsigned>(state.thread_index())} *
                    kChunks * kChunkBytes;
    unsigned i = 0;
    for (auto _ : state) {
        const Addr a = base + Addr{i % kChunks} * kChunkBytes;
        benchmark::DoNotOptimize(shadow->slots(a));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
    if (state.thread_index() == 0)
        shadow.reset();
}

/** All threads rotate over the same 16 chunks: on the mutex design
 *  every lookup serialises on a shard lock some other thread holds;
 *  the lock-free table's lookups stay wait-free. This is the kernel
 *  the acceptance criterion gates on at >=16 threads. */
template <class Index>
void
indexConflict(benchmark::State &state)
{
    static std::unique_ptr<Index> shadow;
    if (state.thread_index() == 0) {
        shadow = std::make_unique<Index>();
        // Pre-materialise from thread 0 — the placement the old
        // design got by accident (see the NUMA lane below).
        for (unsigned c = 0; c < 16; ++c)
            benchmark::DoNotOptimize(
                shadow->slots(kBase + Addr{c} * kChunkBytes));
    }
    unsigned i = 0;
    for (auto _ : state) {
        const Addr a = kBase + Addr{i % 16} * kChunkBytes +
                       Addr{static_cast<unsigned>(state.thread_index())} *
                           64;
        benchmark::DoNotOptimize(shadow->slots(a));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
    if (state.thread_index() == 0)
        shadow.reset();
}

/** The NUMA ablation: same conflict kernel, but each thread's first
 *  touch materialises chunks itself, so numa::allocLocal places them
 *  on the toucher's node. Single-node hosts: identical to the lane
 *  above; multi-node: the delta is the remote-chunk tax. */
void
indexConflictFirstTouch(benchmark::State &state)
{
    static std::unique_ptr<SparseShadow> shadow;
    if (state.thread_index() == 0)
        shadow = std::make_unique<SparseShadow>();
    unsigned i = 0;
    for (auto _ : state) {
        const Addr a = kBase + Addr{i % 16} * kChunkBytes +
                       Addr{static_cast<unsigned>(state.thread_index())} *
                           64;
        benchmark::DoNotOptimize(shadow->slots(a));
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
    if (state.thread_index() == 0)
        shadow.reset();
}

void
BM_IndexStreamMutexShard(benchmark::State &state)
{
    indexStream<MutexShardShadow>(state);
}
void
BM_IndexStreamLockFree(benchmark::State &state)
{
    indexStream<SparseShadow>(state);
}
void
BM_IndexStrideMutexShard(benchmark::State &state)
{
    indexStride<MutexShardShadow>(state);
}
void
BM_IndexStrideLockFree(benchmark::State &state)
{
    indexStride<SparseShadow>(state);
}
void
BM_IndexConflictMutexShard(benchmark::State &state)
{
    indexConflict<MutexShardShadow>(state);
}
void
BM_IndexConflictLockFree(benchmark::State &state)
{
    indexConflict<SparseShadow>(state);
}
void
BM_IndexConflictLockFreeNuma(benchmark::State &state)
{
    indexConflictFirstTouch(state);
}

#define CLEAN_SCALE_THREADS ThreadRange(1, 64)->UseRealTime()

BENCHMARK(BM_IndexStreamMutexShard)->CLEAN_SCALE_THREADS;
BENCHMARK(BM_IndexStreamLockFree)->CLEAN_SCALE_THREADS;
BENCHMARK(BM_IndexStrideMutexShard)->CLEAN_SCALE_THREADS;
BENCHMARK(BM_IndexStrideLockFree)->CLEAN_SCALE_THREADS;
BENCHMARK(BM_IndexConflictMutexShard)->CLEAN_SCALE_THREADS;
BENCHMARK(BM_IndexConflictLockFree)->CLEAN_SCALE_THREADS;
BENCHMARK(BM_IndexConflictLockFreeNuma)->CLEAN_SCALE_THREADS;

// ---------------------------------------------------------------------
// Full batched checker over one shared SparseShadow.
// ---------------------------------------------------------------------

/** Per-thread streaming reads through the batched read-check path,
 *  thread-private 256 KiB regions, overflow drains in the timed loop.
 *  Aggregate items/s across threads is the scaling headline. */
void
BM_CheckerStreamBatch(benchmark::State &state)
{
    static std::unique_ptr<SparseShadow> shadow;
    static std::unique_ptr<RaceChecker<SparseShadow>> checker;
    if (state.thread_index() == 0) {
        CheckerConfig config;
        config.batch = true;
        shadow = std::make_unique<SparseShadow>();
        checker = std::make_unique<RaceChecker<SparseShadow>>(config,
                                                              *shadow);
    }
    const ThreadId tid = static_cast<ThreadId>(state.thread_index());
    const ThreadId slots = static_cast<ThreadId>(state.threads());
    ThreadState self(kDefaultEpochConfig, tid, slots);
    self.vc.setClock(tid, 1);
    self.refreshOwnEpoch();
    constexpr std::size_t kRegion = 256 << 10;
    const Addr base = kBase + Addr{tid} * (Addr{1} << 21);
    // Threads only synchronise at the state loop's entry barrier, so
    // nothing may touch the shared checker before it: the one-time
    // ownership pass (puts every deferred check on the all-equal scan
    // path) runs lazily on the first iteration. Overflow drains fire
    // naturally every batchBytes, so drain cost stays in the timed
    // region; the tail of the last window is deliberately left
    // undrained — a post-loop drain would race thread 0's teardown.
    bool owned = false;
    Addr a = base;
    for (auto _ : state) {
        if (CLEAN_UNLIKELY(!owned)) {
            for (Addr w = base; w < base + kRegion; w += 256)
                checker->beforeWrite(self, w, 256);
            owned = true;
        }
        checker->afterRead(self, a, 8);
        a += 8;
        if (a >= base + kRegion)
            a = base;
    }
    state.SetItemsProcessed(state.iterations());
    if (state.thread_index() == 0) {
        checker.reset();
        shadow.reset();
    }
}
BENCHMARK(BM_CheckerStreamBatch)->CLEAN_SCALE_THREADS;

// ---------------------------------------------------------------------
// --async-check ablation: inline vs checker-thread drain retirement.
// ---------------------------------------------------------------------

void
runtimeDrainLane(benchmark::State &state, bool async)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    config.asyncCheck = async;
    CleanRuntime rt(config);
    constexpr unsigned kWords = 1 << 14; // 64 KiB: one drain window
    auto *x = rt.heap().allocSharedArray<int>(kWords);
    ThreadContext &main = rt.mainContext();
    CleanMutex mu(rt);
    for (unsigned i = 0; i < kWords; ++i)
        main.write(&x[i], static_cast<int>(i));
    for (auto _ : state) {
        int sum = 0;
        for (unsigned i = 0; i < kWords; ++i)
            sum += main.read(&x[i]);
        benchmark::DoNotOptimize(sum);
        // SFR boundary: the drain (inline or handed to the checker
        // thread) retires the whole buffered window here.
        mu.lock(main);
        mu.unlock(main);
    }
    state.SetItemsProcessed(state.iterations() * kWords);
}

void
BM_RuntimeDrainInline(benchmark::State &state)
{
    runtimeDrainLane(state, false);
}
void
BM_RuntimeDrainAsync(benchmark::State &state)
{
    runtimeDrainLane(state, true);
}
BENCHMARK(BM_RuntimeDrainInline);
BENCHMARK(BM_RuntimeDrainAsync);

// ---------------------------------------------------------------------
// Timing-model lane: cores = trace threads, swept to 64.
// ---------------------------------------------------------------------

/** Replays an N-thread blackscholes trace (embarrassingly parallel,
 *  the best-case scaling shape) on the §6.3.1 machine with the CLEAN
 *  unit on, one core per thread. Manual time = simulated time at 2
 *  GHz; items/s is the model's aggregate checked-access rate. */
void
BM_SimCheckedAccessRate(benchmark::State &state)
{
    const unsigned threads = static_cast<unsigned>(state.range(0));
    wl::RunSpec spec;
    spec.workload = "blackscholes";
    spec.backend = wl::BackendKind::Trace;
    spec.params.threads = threads;
    spec.params.scale = wl::Scale::Test;
    spec.params.seed = 0x5ca1e;
    spec.runtime.maxThreads = 128;
    spec.runtime.heap.sharedBytes = std::size_t{512} << 20;
    spec.runtime.heap.privateBytes = std::size_t{128} << 20;
    const wl::RunResult traced = wl::runWorkload(spec);
    sim::MachineConfig machine; // cores = 0: one per trace thread
    std::uint64_t accesses = 0;
    for (auto _ : state) {
        const sim::MachineStats stats =
            sim::simulate(traced.trace, machine);
        accesses = stats.memoryAccesses;
        state.SetIterationTime(static_cast<double>(stats.totalCycles) /
                               2e9);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * accesses));
    state.counters["sim_cores"] =
        static_cast<double>(threads);
}
// Fixed iteration count: the simulation is deterministic (identical
// cycle counts every run), and min-time pacing on *manual* time would
// explode the wall cost exactly where simulated time shrinks — the
// high-core points this lane exists for.
BENCHMARK(BM_SimCheckedAccessRate)
    ->RangeMultiplier(2)
    ->Range(1, 64)
    ->UseManualTime()
    ->Iterations(4);

} // namespace
} // namespace clean

BENCHMARK_MAIN();
