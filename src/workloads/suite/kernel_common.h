/**
 * @file
 * Shared scaffolding for workload kernels.
 */

#ifndef CLEAN_WORKLOADS_SUITE_KERNEL_COMMON_H
#define CLEAN_WORKLOADS_SUITE_KERNEL_COMMON_H

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "workloads/shim.h"
#include "workloads/workload.h"

namespace clean::wl::suite
{

/** Boilerplate base: identity + racy-variant flag. */
class KernelBase : public Workload
{
  public:
    KernelBase(const char *name, const char *suiteName, bool racy)
        : name_(name), suite_(suiteName), racy_(racy)
    {
    }

    const char *name() const override { return name_; }
    const char *suite() const override { return suite_; }
    bool hasRacyVariant() const override { return racy_; }

  private:
    const char *name_;
    const char *suite_;
    bool racy_;
};

/** Picks a size for the requested scale class. */
inline std::uint64_t
scaled(Scale s, std::uint64_t test, std::uint64_t small, std::uint64_t large)
{
    switch (s) {
      case Scale::Test: return test;
      case Scale::Small: return small;
      case Scale::Large: return large;
    }
    return test;
}

/** [begin, end) slice of n items for worker w of c workers. */
struct Slice
{
    std::uint64_t begin;
    std::uint64_t end;
};

inline Slice
sliceOf(std::uint64_t n, unsigned w, unsigned c)
{
    const std::uint64_t per = (n + c - 1) / c;
    const std::uint64_t b = std::min<std::uint64_t>(n, per * w);
    const std::uint64_t e = std::min<std::uint64_t>(n, b + per);
    return {b, e};
}

} // namespace clean::wl::suite

#endif // CLEAN_WORKLOADS_SUITE_KERNEL_COMMON_H
