/**
 * @file
 * ocean_cp / ocean_ncp — red-black Gauss-Seidel grid relaxation
 * (SPLASH-2 ocean's SOR core).
 *
 * An n x n grid is relaxed for a fixed number of red/black half-sweeps
 * with barriers between colors. ocean_cp partitions the grid into
 * contiguous row bands (good locality); ocean_ncp deals rows round-robin
 * so every thread strides across the whole grid — the cache-hostile
 * variant whose LLC miss rate makes it a worst case for the 4-byte-epoch
 * design in Figure 11.
 *
 * The red/black split makes neighbor reads safe: a red update reads only
 * black cells and vice versa, and barriers separate the colors — so
 * ocean_cp is race-free. Racy variant (ocean_ncp): the residual
 * reduction is accumulated into a shared double without the lock (WAW),
 * the standard convergence-test race.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

class Ocean : public KernelBase
{
  public:
    Ocean(const char *name, bool contiguous, bool racySupported)
        : KernelBase(name, "splash2", racySupported),
          contiguous_(contiguous)
    {
    }

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t n = scaled(p.scale, 64, 192, 514);
        const std::uint64_t sweeps = scaled(p.scale, 2, 3, 6);

        auto *grid = env.allocShared<double>(n * n);
        auto *residual = env.allocShared<double>(1);
        const unsigned residualLock = env.createMutex();
        const unsigned phase = env.createBarrier(p.threads);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < n * n; ++i)
                grid[i] = init.nextDouble();
            residual[0] = 0.0;
        }

        const bool contiguous = contiguous_;
        const bool racy = p.racy && hasRacyVariant();
        env.parallel(p.threads, [&](Worker &w) {
            // Row ownership: contiguous bands vs round-robin rows.
            auto ownsRow = [&](std::uint64_t row) {
                if (contiguous) {
                    const Slice s = sliceOf(n - 2, w.index(), w.count());
                    return row - 1 >= s.begin && row - 1 < s.end;
                }
                return (row - 1) % w.count() == w.index();
            };

            for (std::uint64_t sweep = 0; sweep < sweeps; ++sweep) {
                for (int color = 0; color < 2; ++color) {
                    double localResidual = 0.0;
                    for (std::uint64_t i = 1; i + 1 < n; ++i) {
                        if (!ownsRow(i))
                            continue;
                        for (std::uint64_t j = 1 + ((i + color) & 1);
                             j + 1 < n; j += 2) {
                            const double up = w.read(&grid[(i - 1) * n + j]);
                            const double down =
                                w.read(&grid[(i + 1) * n + j]);
                            const double left =
                                w.read(&grid[i * n + j - 1]);
                            const double right =
                                w.read(&grid[i * n + j + 1]);
                            const double old = w.read(&grid[i * n + j]);
                            const double next =
                                0.25 * (up + down + left + right);
                            w.write(&grid[i * n + j], next);
                            localResidual += std::fabs(next - old);
                            w.compute(8);
                        }
                    }
                    // Residual reduction.
                    if (racy) {
                        // Unlocked shared accumulation: WAW.
                        w.update(&residual[0], [localResidual](double v) {
                            return v + localResidual;
                        });
                    } else {
                        w.lock(residualLock);
                        w.update(&residual[0], [localResidual](double v) {
                            return v + localResidual;
                        });
                        w.unlock(residualLock);
                    }
                    w.barrier(phase);
                }
            }

            std::uint64_t h = 0;
            for (std::uint64_t i = 1; i + 1 < n; ++i) {
                if (!ownsRow(i))
                    continue;
                h = h * 31 + static_cast<std::uint64_t>(
                                 w.read(&grid[i * n + i]) * 1e6);
            }
            w.sink(h);
        });

        env.declareOutput(grid, n * n * sizeof(double));
    }

  private:
    bool contiguous_;
};

} // namespace

std::unique_ptr<Workload>
makeOceanCp()
{
    return std::make_unique<Ocean>("ocean_cp", true, false);
}

std::unique_ptr<Workload>
makeOceanNcp()
{
    return std::make_unique<Ocean>("ocean_ncp", false, true);
}

} // namespace clean::wl::suite
