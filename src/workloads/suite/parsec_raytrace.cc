/**
 * @file
 * raytrace_p — PARSEC's real-time raytracer (distinct from SPLASH-2
 * raytrace).
 *
 * A two-level grid acceleration structure over random triangles is
 * built once (read-only), then threads pull screen tiles from a
 * lock-protected queue and trace rays through the grid. Almost entirely
 * shared reads + disjoint pixel writes; correctly synchronized —
 * race-free in the paper's suite.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

struct Tri
{
    double ax, ay, bx, by, cx, cy;
    double shade;
    double pad;
};

class RaytraceP : public KernelBase
{
  public:
    RaytraceP() : KernelBase("raytrace_p", "parsec", false) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t dim = scaled(p.scale, 48, 96, 224);
        const std::uint64_t nTris = scaled(p.scale, 64, 192, 512);
        const unsigned g = 8; // acceleration grid side
        const std::uint64_t cellCap = 8 * (nTris / (g * g) + 8);
        const std::uint64_t tile = 8;
        const std::uint64_t nTiles = (dim / tile) * (dim / tile);

        auto *tris = env.allocShared<Tri>(nTris);
        auto *gridCount = env.allocShared<std::uint32_t>(g * g);
        auto *gridList = env.allocShared<std::uint32_t>(g * g * cellCap);
        auto *image = env.allocShared<float>(dim * dim);
        auto *tileCounter = env.allocShared<std::uint64_t>(1);
        const unsigned counterLock = env.createMutex();

        {
            Prng init(p.seed);
            for (std::uint64_t c = 0; c < g * g; ++c)
                gridCount[c] = 0;
            for (std::uint64_t t = 0; t < nTris; ++t) {
                const double x = init.nextDouble(), y = init.nextDouble();
                tris[t].ax = x;
                tris[t].ay = y;
                tris[t].bx = x + init.nextDouble() * 0.1;
                tris[t].by = y + init.nextDouble() * 0.1;
                tris[t].cx = x + init.nextDouble() * 0.1;
                tris[t].cy = y - init.nextDouble() * 0.1;
                tris[t].shade = init.nextDouble();
                // Insert into overlapped grid cells (centroid cell).
                const unsigned cx = std::min<unsigned>(
                    g - 1, static_cast<unsigned>(x * g));
                const unsigned cy = std::min<unsigned>(
                    g - 1, static_cast<unsigned>(y * g));
                const unsigned c = cy * g + cx;
                if (gridCount[c] < cellCap)
                    gridList[c * cellCap + gridCount[c]++] =
                        static_cast<std::uint32_t>(t);
            }
            tileCounter[0] = 0;
        }

        env.parallel(p.threads, [&](Worker &w) {
            double localSum = 0.0;
            for (;;) {
                std::uint64_t t;
                w.lock(counterLock);
                t = w.read(&tileCounter[0]);
                w.write(&tileCounter[0], t + 1);
                w.unlock(counterLock);
                if (t >= nTiles)
                    break;
                const std::uint64_t tilesPerSide = dim / tile;
                const std::uint64_t ty = (t / tilesPerSide) * tile;
                const std::uint64_t tx = (t % tilesPerSide) * tile;
                for (std::uint64_t py = ty; py < ty + tile; ++py) {
                    for (std::uint64_t px = tx; px < tx + tile; ++px) {
                        const double rx =
                            (px + 0.5) / static_cast<double>(dim);
                        const double ry =
                            (py + 0.5) / static_cast<double>(dim);
                        // Walk the grid cell the ray lands in plus one
                        // neighbor ring (flat projection).
                        double shade = 0.0;
                        const unsigned cx = std::min<unsigned>(
                            g - 1, static_cast<unsigned>(rx * g));
                        const unsigned cy = std::min<unsigned>(
                            g - 1, static_cast<unsigned>(ry * g));
                        for (int dyc = -1; dyc <= 1; ++dyc) {
                            for (int dxc = -1; dxc <= 1; ++dxc) {
                                const int ncx = static_cast<int>(cx) + dxc;
                                const int ncy = static_cast<int>(cy) + dyc;
                                if (ncx < 0 || ncy < 0 ||
                                    ncx >= static_cast<int>(g) ||
                                    ncy >= static_cast<int>(g)) {
                                    continue;
                                }
                                const unsigned c = ncy * g + ncx;
                                const std::uint32_t cnt =
                                    w.read(&gridCount[c]);
                                for (std::uint32_t k = 0; k < cnt; ++k) {
                                    const std::uint32_t ti = w.read(
                                        &gridList[c * cellCap + k]);
                                    // Barycentric point-in-triangle.
                                    const double ax =
                                        w.read(&tris[ti].ax);
                                    const double ay =
                                        w.read(&tris[ti].ay);
                                    const double bx =
                                        w.read(&tris[ti].bx);
                                    const double by =
                                        w.read(&tris[ti].by);
                                    const double cxx =
                                        w.read(&tris[ti].cx);
                                    const double cyy =
                                        w.read(&tris[ti].cy);
                                    const double d =
                                        (by - cyy) * (ax - cxx) +
                                        (cxx - bx) * (ay - cyy);
                                    if (std::fabs(d) < 1e-12)
                                        continue;
                                    const double l1 =
                                        ((by - cyy) * (rx - cxx) +
                                         (cxx - bx) * (ry - cyy)) /
                                        d;
                                    const double l2 =
                                        ((cyy - ay) * (rx - cxx) +
                                         (ax - cxx) * (ry - cyy)) /
                                        d;
                                    const double l3 = 1.0 - l1 - l2;
                                    if (l1 >= 0 && l2 >= 0 && l3 >= 0)
                                        shade = std::max(
                                            shade,
                                            w.read(&tris[ti].shade));
                                    w.compute(20);
                                }
                            }
                        }
                        w.write(&image[py * dim + px],
                                static_cast<float>(shade));
                        localSum += shade;
                    }
                }
            }
            w.sink(static_cast<std::uint64_t>(localSum * 1e6));
        });

        env.declareOutput(image, dim * dim * sizeof(float));
    }
};

} // namespace

std::unique_ptr<Workload>
makeRaytraceP()
{
    return std::make_unique<RaytraceP>();
}

} // namespace clean::wl::suite
