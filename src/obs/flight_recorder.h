/**
 * @file
 * Per-thread flight recorder: lock-free SPSC ring buffers of typed
 * events, merged deterministically (ISSUE 4 tentpole).
 *
 * Layering: obs depends only on support — the core runtime owns a
 * FlightRecorder and pushes events into it, never the other way round.
 * (One deliberate exception: the sampling governor in obs/governor.h
 * reuses the recover quarantine ledger and the core SampleGate ladder
 * constant; it is compiled into clean_core for that reason.)
 *
 * Concurrency contract: each ThreadLane is written exclusively by its
 * owning thread (single producer). Readers (failure reports, the trace
 * exporter) run either on the owning thread itself or after the owning
 * thread quiesced (joined / finished / parked), so the release-store of
 * the head and the overwrite-oldest policy are the only coordination
 * needed. The one site where no single owner exists — the rollover
 * resetter, which can be any thread — goes through a mutex-guarded
 * global lane instead.
 */

#ifndef CLEAN_OBS_FLIGHT_RECORDER_H
#define CLEAN_OBS_FLIGHT_RECORDER_H

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/events.h"
#include "obs/metrics.h"
#include "support/common.h"

namespace clean::obs
{

/** Runtime knobs of the observability layer (RuntimeConfig::obs). */
struct ObsConfig
{
    /** Master runtime switch; no recorder is built when false, so the
     *  disabled hot path costs one never-taken null check. */
    bool enabled = false;
    /** Per-thread ring capacity in events (rounded up to a power of
     *  two); the ring keeps the newest events, overwriting the oldest. */
    std::size_t ringEvents = 4096;
    /** Events per thread embedded in failureReportJson ("last N"). */
    std::size_t failureTail = 32;
    /** Sample every Nth checked access for the check-latency histogram
     *  (wall-clock nanoseconds; 0 disables sampling). Sampling uses the
     *  deterministic access stream, so *which* accesses are timed is
     *  reproducible even though the measured latencies are physical. */
    std::uint32_t latencySampleEvery = 64;
};

/** One thread's ring plus its owner-thread histograms. */
class ThreadLane
{
  public:
    ThreadLane(ThreadId tid, std::size_t capacity);

    ThreadLane(const ThreadLane &) = delete;
    ThreadLane &operator=(const ThreadLane &) = delete;

    /** Appends one event (owner thread only). Overwrites the oldest
     *  record once the ring is full. An attached hook (record sink /
     *  replay validator) observes the event after the ring append; the
     *  hook may throw, in which case the ring still holds the event. */
    void
    record(EventKind kind, std::uint64_t det, std::uint64_t arg0 = 0,
           std::uint64_t arg1 = 0)
    {
        const std::uint64_t seq = head_.load(std::memory_order_relaxed);
        Event &e = ring_[seq & mask_];
        e.det = det;
        e.seq = seq;
        e.arg0 = arg0;
        e.arg1 = arg1;
        e.tid = tid_;
        e.kind = kind;
        head_.store(seq + 1, std::memory_order_release);
        if (CLEAN_UNLIKELY(hook_ != nullptr))
            hook_->onEvent(e);
    }

    /** Attaches the event hook. Install before the owning thread starts
     *  recording (the runtime does this at construction, before any
     *  worker spawns). */
    void setHook(EventHook *hook) { hook_ = hook; }

    /** Total events ever recorded (monotonic; exceeds capacity once the
     *  ring wrapped). */
    std::uint64_t
    recorded() const
    {
        return head_.load(std::memory_order_acquire);
    }

    /** Retained events, oldest first; at most @p lastN newest when
     *  lastN > 0. Call only while the owner is quiesced (see file
     *  comment). */
    std::vector<Event> events(std::size_t lastN = 0) const;

    ThreadId tid() const { return tid_; }
    std::size_t capacity() const { return mask_ + 1; }

    /** SFR length in deterministic events, fed at each SfrEnd. */
    Histogram sfrLength;
    /** Sampled race-check latency in nanoseconds (physical time; see
     *  ObsConfig::latencySampleEvery). */
    Histogram checkLatencyNs;

  private:
    ThreadId tid_;
    std::size_t mask_;
    std::vector<Event> ring_;
    /** Own cache line: the owner bumps this on every recorded event
     *  while other lanes' owners do the same, and lanes are allocated
     *  back-to-back — without the alignment the heads false-share. */
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
    /** Not owned; null in the common (no record/replay) case. */
    EventHook *hook_ = nullptr;
};
static_assert(alignof(ThreadLane) >= kCacheLineBytes,
              "ring heads must not false-share across lanes");

/**
 * The runtime-wide recorder: one lane per thread slot plus a global
 * lane (rollovers). Lanes are preallocated so the hot path never
 * allocates; a reused tid continues its predecessor's lane, which is
 * deterministic because tid reuse itself is (§3.3).
 */
class FlightRecorder
{
  public:
    FlightRecorder(const ObsConfig &config, ThreadId maxThreads);

    const ObsConfig &config() const { return config_; }

    /** Lane of thread @p tid; null when tid is out of range. */
    ThreadLane *
    lane(ThreadId tid)
    {
        return tid < maxThreads_ ? lanes_[tid].get() : nullptr;
    }

    /** The synthetic tid the global lane's events carry. */
    ThreadId globalTid() const { return maxThreads_; }

    /** Appends to the global lane (any thread; mutex-guarded). */
    void recordGlobal(EventKind kind, std::uint64_t det,
                      std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

    /** Attaches @p hook to every lane (including the global one).
     *  Install before any thread records — the runtime does this in its
     *  constructor when record or replay is configured. */
    void setHook(EventHook *hook);

    /**
     * Merged stream of all lanes, sorted by (det, tid, seq) — a total
     * order that is a function of the deterministic execution only, so
     * two deterministic runs merge to identical streams. With
     * @p perThreadTail > 0 only the newest N events per lane merge
     * (failure-report mode).
     */
    std::vector<Event> merged(std::size_t perThreadTail = 0) const;

    /** Sum of ThreadLane::recorded() over all lanes. */
    std::uint64_t totalRecorded() const;

    /** Per-kind totals over the *retained* events (ring overwrite drops
     *  the oldest; see DESIGN.md §11). Index by EventKind. */
    std::vector<std::uint64_t> retainedByKind() const;

    Histogram mergedSfrLength() const;
    Histogram mergedCheckLatency() const;

  private:
    ObsConfig config_;
    ThreadId maxThreads_;
    /** maxThreads_ per-thread lanes + 1 global lane (index maxThreads_). */
    std::vector<std::unique_ptr<ThreadLane>> lanes_;
    std::mutex globalMutex_;
};

} // namespace clean::obs

#endif // CLEAN_OBS_FLIGHT_RECORDER_H
