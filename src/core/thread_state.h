/**
 * @file
 * Per-thread detector state: vector clock, cached own epoch, counters.
 */

#ifndef CLEAN_CORE_THREAD_STATE_H
#define CLEAN_CORE_THREAD_STATE_H

#include <cstdint>
#include <memory>
#ifndef NDEBUG
#include <atomic>
#endif
#include <thread>

#include "core/epoch.h"
#include "core/sampling.h"
#include "core/vector_clock.h"
#include "obs/metrics.h"
#include "support/common.h"
#include "support/logging.h"
#include "support/numa.h"
#include "support/stats.h"

namespace clean
{

/**
 * Counters a thread bumps on its own accesses; merged after a run. They
 * feed Figures 7 (shared-access frequency) and 8 (access-width and
 * same-epoch statistics backing the vectorization optimization).
 */
struct CheckerStats
{
    // Field order is hot-path-tuned, not thematic: the checker entry
    // paths bump several counters per access, and the compiler fuses
    // *adjacent* bumped pairs into one 16-byte vector RMW. Measured on
    // the owned-line hit path, that fused load-add-store is slower than
    // two independent scalar `add $1, mem` chains (~0.7-1ns/access)
    // whether the 16-byte access is aligned or not, because it
    // serializes two otherwise-parallel store-forwarding chains. So the
    // layout interleaves counters that a single checker path bumps
    // back-to-back (accessedBytes / sharedReads / sharedWrites /
    // wideAccesses / wideSameEpoch / ownCacheHitRun) with counters that
    // path does not touch, leaving no fusable pair.
    std::uint64_t accessedBytes = 0;
    /** Write checks that had to publish a new epoch. */
    std::uint64_t epochUpdates = 0;
    std::uint64_t sharedReads = 0;
    /** CAS updates that performed 4 epochs at once (128-bit CAS, §4.4). */
    std::uint64_t wideCasUpdates = 0;
    /**
     * Read checks shed by the --overhead-budget sampling gate (§15). A
     * shed read still bumps sharedReads and accessedBytes (site
     * ordinals and Fig. 7 byte totals must match the unbudgeted run
     * exactly), so this counter sits between two fields that path does
     * not touch — the layout rule above (the shed path bumps
     * accessedBytes / sharedReads / shedReads back-to-back).
     */
    std::uint64_t shedReads = 0;
    std::uint64_t sharedWrites = 0;
    std::uint64_t replayedReads = 0;
    /** Accesses at least 4 bytes wide (paper: >= 91.9% on average). */
    std::uint64_t wideAccesses = 0;
    std::uint64_t replayedWrites = 0;
    /** Wide accesses whose bytes all carried one epoch (paper: >= 99.7%). */
    std::uint64_t wideSameEpoch = 0;
    std::uint64_t replayedBytes = 0;
    /** Open ownership-cache hit run (see the ownCache block below). */
    std::uint64_t ownCacheHitRun = 0;
    /**
     * Accesses re-executed by SFR recovery (rollback + replay). The
     * checker bumps the base counters during a replay exactly as during
     * the original execution; recoverAccess then moves those deltas
     * into the replayed* counters, so sharedReads/sharedWrites keep
     * counting each program access once (Fig. 7 stays faithful) and the
     * recovery re-execution cost is visible separately. (The replayed*
     * fields sit interleaved above/below purely for the layout rule.)
     */
    std::uint64_t replayedEpochUpdates = 0;
    /**
     * Ownership-cache telemetry (§5.2 software analogue; see
     * OwnershipCache below). Hits are not counted directly on the hot
     * path: each hit extends the open run `ownCacheHitRun`, which the
     * next miss or flush closes into the log2 histogram
     * `ownCacheHitRuns` — total hits = histogram sum + the open run.
     * `ownCacheFlushes` counts only flushes that actually discarded
     * entries (a flush of an empty cache is free and uninteresting).
     */
    std::uint64_t ownCacheMisses = 0;
    std::uint64_t ownCacheFlushes = 0;
    obs::Histogram ownCacheHitRuns;
    /**
     * Batched-checking telemetry (§14). The append path bumps only
     * `batchRuns` (and only when an access opens a new run — extending
     * the open run touches no counter here); the drain path owns the
     * rest, so none of these sit adjacent to a per-access hot counter
     * (the layout rule above).
     */
    std::uint64_t batchRuns = 0;
    /** Drains of a non-empty buffer (boundary or overflow). */
    std::uint64_t batchDrains = 0;
    /** Drains forced by buffer capacity, a subset of batchDrains. */
    std::uint64_t batchOverflowDrains = 0;
    /** Data bytes whose deferred checks a drain retired. */
    std::uint64_t batchDrainedBytes = 0;
    /** log2 histogram of coalesced run lengths (bytes) at drain. */
    obs::Histogram batchRunBytes;

    std::uint64_t
    ownCacheHits() const
    {
        return ownCacheHitRuns.sum() + ownCacheHitRun;
    }

    /** Closes the open hit run into the histogram (miss/flush/export). */
    void
    closeOwnCacheRun()
    {
        if (ownCacheHitRun != 0) {
            ownCacheHitRuns.add(ownCacheHitRun);
            ownCacheHitRun = 0;
        }
    }

    void
    merge(const CheckerStats &other)
    {
        sharedReads += other.sharedReads;
        sharedWrites += other.sharedWrites;
        shedReads += other.shedReads;
        accessedBytes += other.accessedBytes;
        wideAccesses += other.wideAccesses;
        wideSameEpoch += other.wideSameEpoch;
        epochUpdates += other.epochUpdates;
        wideCasUpdates += other.wideCasUpdates;
        replayedReads += other.replayedReads;
        replayedWrites += other.replayedWrites;
        replayedBytes += other.replayedBytes;
        replayedEpochUpdates += other.replayedEpochUpdates;
        ownCacheMisses += other.ownCacheMisses;
        ownCacheFlushes += other.ownCacheFlushes;
        batchRuns += other.batchRuns;
        batchDrains += other.batchDrains;
        batchOverflowDrains += other.batchOverflowDrains;
        batchDrainedBytes += other.batchDrainedBytes;
        batchRunBytes.merge(other.batchRunBytes);
        ownCacheHitRuns.merge(other.ownCacheHitRuns);
        // A still-open hit run in the source merges as a closed run so
        // the histogram accounts for every hit exactly once.
        if (other.ownCacheHitRun != 0)
            ownCacheHitRuns.add(other.ownCacheHitRun);
    }

    std::uint64_t accesses() const { return sharedReads + sharedWrites; }

    /** Dumps into a StatSet under the given prefix. */
    void
    exportTo(StatSet &stats, const std::string &prefix) const
    {
        stats.counter(prefix + ".sharedReads") += sharedReads;
        stats.counter(prefix + ".sharedWrites") += sharedWrites;
        stats.counter(prefix + ".shedReads") += shedReads;
        stats.counter(prefix + ".accessedBytes") += accessedBytes;
        stats.counter(prefix + ".wideAccesses") += wideAccesses;
        stats.counter(prefix + ".wideSameEpoch") += wideSameEpoch;
        stats.counter(prefix + ".epochUpdates") += epochUpdates;
        stats.counter(prefix + ".wideCasUpdates") += wideCasUpdates;
        stats.counter(prefix + ".replayedReads") += replayedReads;
        stats.counter(prefix + ".replayedWrites") += replayedWrites;
        stats.counter(prefix + ".replayedBytes") += replayedBytes;
        stats.counter(prefix + ".replayedEpochUpdates") +=
            replayedEpochUpdates;
        stats.counter(prefix + ".ownCacheHits") += ownCacheHits();
        stats.counter(prefix + ".ownCacheMisses") += ownCacheMisses;
        stats.counter(prefix + ".ownCacheFlushes") += ownCacheFlushes;
        stats.counter(prefix + ".batchRuns") += batchRuns;
        stats.counter(prefix + ".batchDrains") += batchDrains;
        stats.counter(prefix + ".batchOverflowDrains") +=
            batchOverflowDrains;
        stats.counter(prefix + ".batchDrainedBytes") += batchDrainedBytes;
    }
};

/**
 * Per-thread direct-mapped cache of shadow bytes known to hold the
 * thread's own current epoch — the software analogue of the §5.2
 * per-core ownership cache. An access whose bytes are all covered by a
 * valid entry retires with zero shadow traffic: no slots() lookup, no
 * SIMD scan, no vector-clock access, and for writes no republish.
 *
 * Soundness (the §5.2 isolation argument, restated for software):
 * a valid entry for byte b was created when this thread *verified or
 * published* ownEpoch over b's shadow slot, and `ownEpoch` has not
 * changed since (any change goes through refreshOwnEpoch, which
 * flushes). For the slot to stop holding ownEpoch, another thread W
 * must publish its epoch over it — but every publish path
 * (publishBytes / writeRunCas) runs W's own Figure 2 check against the
 * value it replaces *before* the CAS. Since we have performed no
 * release since claiming (a release ticks our clock →
 * refreshOwnEpoch → flush), W cannot be ordered after our epoch, so
 * W's check fires: the WAW/RAW race is detected *at the writer* before
 * our entry can go stale. Skipping our own check on a hit therefore
 * never hides a race — it only elides re-verification of bytes whose
 * epoch provably still equals ownEpoch.
 *
 * Entries track sub-line ownership with a 64-bit byte mask, so a hot
 * 8-byte word claims (and hits on) exactly its own bytes — no
 * whole-line scans, and bytes never written by this thread are never
 * treated as owned. Invalidation is O(1): bumping `gen_` makes every
 * entry's recorded generation stale at once.
 */
class OwnershipCache
{
  public:
    static constexpr std::size_t kEntries = 512;
    static constexpr unsigned kLineShift = 6;
    static constexpr std::size_t kLineBytes = std::size_t{1} << kLineShift;

    /**
     * True iff every byte of [addr, addr + size) is cached as owned.
     * Spans crossing a 64B line boundary (and size 0) always miss;
     * callers fall back to the shadow path, whose claims still cover
     * both lines for future (line-contained) accesses.
     */
    CLEAN_ALWAYS_INLINE bool
    covered(Addr addr, std::size_t size) const
    {
        const std::size_t off =
            static_cast<std::size_t>(addr) & (kLineBytes - 1);
        // One guard for both "crosses a line" and "size == 0" (the
        // subtraction wraps size 0 far past kLineBytes).
        if (CLEAN_UNLIKELY(off + size - 1 >= kLineBytes))
            return false;
        const Entry &e = entries_[indexOf(addr)];
        // need: bit per byte of the access; size is in [1, 64] here, so
        // the right-shift count stays in [0, 63] (no UB for full lines).
        const std::uint64_t need =
            (~std::uint64_t{0} >> (kLineBytes - size)) << off;
        // Line match, generation match, and mask coverage folded into
        // one zero test — a single branch on the hot path.
        return ((e.line ^ (addr >> kLineShift)) | (e.gen ^ gen_) |
                (need & ~e.mask)) == 0;
    }

    /**
     * Records [addr, addr + size) as owned. The caller must have just
     * verified (same-epoch scan) or published (successful CAS run) the
     * owning thread's current epoch over exactly these shadow bytes.
     */
    void
    claim(Addr addr, std::size_t size)
    {
        while (size > 0) {
            const std::size_t off =
                static_cast<std::size_t>(addr) & (kLineBytes - 1);
            const std::size_t chunk = std::min(size, kLineBytes - off);
            Entry &e = entries_[indexOf(addr)];
            const Addr line = addr >> kLineShift;
            if (e.line != line || e.gen != gen_) {
                e.line = line;
                e.gen = gen_;
                e.mask = 0;
            }
            e.mask |= maskOf(off, chunk);
            addr += chunk;
            size -= chunk;
        }
        dirty_ = true;
    }

    /**
     * O(1) whole-cache invalidation: every entry's recorded generation
     * becomes stale at once. Closes the open hit run and counts the
     * flush (only if entries existed to discard). Must run at every
     * SFR boundary that changes or invalidates ownEpoch —
     * refreshOwnEpoch calls it — and whenever published epochs are
     * retracted behind the cache's back (recovery rollback, rollover
     * reset; the latter goes through refreshOwnEpoch too).
     */
    void
    flush(CheckerStats &stats)
    {
        gen_++;
        stats.closeOwnCacheRun();
        if (dirty_) {
            stats.ownCacheFlushes++;
            dirty_ = false;
        }
    }

    /** True iff any entry has been claimed since the last flush. */
    bool dirty() const { return dirty_; }

  private:
    struct Entry
    {
        /** addr >> kLineShift of the cached line. */
        Addr line = 0;
        /** Generation the entry was (last) claimed in. */
        std::uint64_t gen = 0;
        /** Bit b set => byte b of the line holds ownEpoch. */
        std::uint64_t mask = 0;
    };

    CLEAN_ALWAYS_INLINE static std::size_t
    indexOf(Addr addr)
    {
        return (static_cast<std::size_t>(addr) >> kLineShift) &
               (kEntries - 1);
    }

    CLEAN_ALWAYS_INLINE static std::uint64_t
    maskOf(std::size_t off, std::size_t size)
    {
        // size in [1, 64]; the select avoids the UB of a 64-bit shift
        // by 64 for full-line masks.
        const std::uint64_t bits =
            size >= kLineBytes ? ~std::uint64_t{0}
                               : (std::uint64_t{1} << size) - 1;
        return bits << off;
    }

    Entry entries_[kEntries];
    /** Starts at 1 so zero-initialized entries can never match. */
    std::uint64_t gen_ = 1;
    bool dirty_ = false;
};

/**
 * Per-thread buffer of read-access runs whose Figure 2 checks are
 * deferred to the next SFR boundary (§14 batched checking). Appends
 * coalesce accesses that are contiguous in address *and* uninterrupted
 * in site order into one run, so the drain can retire a whole streamed
 * span with one prefetched shadow walk and a single wide
 * all-epochs-equal scan.
 *
 * Only *read* checks may be buffered: a write's check-then-publish must
 * stay ordered before its data store (§4.3) or a concurrent reader
 * could consume racy data with no epoch evidence ever published.
 * Deferring reads is the §5.2 relaxation: the conflicting writer's
 * epoch stays in the shadow until our drain, which runs before the
 * SFR's effects can escape (before the release/acquire/retirement
 * completes), so the race still fires inside the SFR that read the
 * racy value.
 *
 * Storage is lazily allocated by the checker on first append (plain
 * ThreadState users that never enable batching pay nothing); since the
 * owning thread performs that first append, the run table lands on its
 * NUMA node (numa::LocalArray). The whole struct is cache-line aligned
 * so the per-access head fields (open/count/cursor) of adjacent
 * ThreadStates can never false-share.
 */
struct alignas(kCacheLineBytes) BatchBuffer
{
    struct Run
    {
        Addr addr = 0;
        /** Global access index of the run's first access (for exact
         *  per-access race siting: site = firstSite + offset/sizeEach;
         *  the access count is bytes / sizeEach, divided only at
         *  drain/race time, never on the append hot path). */
        std::uint64_t firstSite = 0;
        /** SFR ordinal the run's accesses executed in. */
        std::uint64_t sfrOrdinal = 0;
        /** Total coalesced length in bytes. */
        std::uint32_t bytes = 0;
        /** Uniform per-access width (the coalescing key). */
        std::uint32_t sizeEach = 0;
    };
    static_assert(sizeof(Run) == 32, "Run is sized for cheap indexing");

    numa::LocalArray<Run> runs;
    /** The run new appends may extend, or null when none is open. A
     *  write (which bumps the access ordinal without appending) and
     *  every drain close it, so a run's accesses are always consecutive
     *  ordinals — the invariant behind firstSite + offset/sizeEach
     *  race siting — without the append path consulting the stats. */
    Run *open = nullptr;
    std::uint32_t count = 0;
    std::uint32_t capacity = 0;
    /** Drain-resume position: runs[0, cursor) are fully checked, and
     *  within runs[cursor] the first cursorOff bytes are checked. A
     *  drain that throws under a non-aborting policy resumes past the
     *  racy access instead of rechecking it. */
    std::uint32_t cursor = 0;
    std::uint32_t cursorOff = 0;
    /** Data bytes buffered in *closed* runs (settled when a run stops
     *  being `open`). The open run's budget is precomputed instead:
     *  extending it to `openLimit` bytes means closedBytes + bytes
     *  reached the configured batch-bytes cap — the append hot path
     *  keeps one running counter (the run's own length) and one
     *  compare, no global accumulator update. */
    std::uint64_t closedBytes = 0;
    /** Open-run length (bytes) at which an overflow drain fires. */
    std::uint32_t openLimit = 0;

    bool empty() const { return count == 0; }

    /** Retires the open run from coalescing (a write interleaved, or a
     *  drain): settle its bytes into the closed total. */
    void
    closeOpenRun()
    {
        if (open != nullptr) {
            closedBytes += open->bytes;
            open = nullptr;
        }
    }

    void
    clear()
    {
        open = nullptr;
        count = 0;
        cursor = 0;
        cursorOff = 0;
        closedBytes = 0;
        openLimit = 0;
    }
};
static_assert(alignof(BatchBuffer) == kCacheLineBytes,
              "batch heads must not false-share across threads");

/**
 * Detector-visible state of one running thread.
 *
 * The `ownEpoch` member caches vc.element(tid) — the "main element" of
 * the thread's vector clock (§2.3). The runtime refreshes it whenever the
 * thread's own clock ticks; the hardware model mirrors it as the per-core
 * 32-bit register of §5.1.
 */
struct ThreadState
{
    ThreadState(const EpochConfig &config, ThreadId tid, ThreadId slots)
        : tid(tid), vc(config, slots), ownEpoch(config.pack(tid, 0))
    {
    }

    /**
     * Re-derives the cached main element, and flushes the ownership
     * cache iff the element actually changed: its entries assert "this
     * shadow byte holds ownEpoch", which a new value invalidates
     * wholesale. Every clock-changing site (spawn, tickClock on
     * release) funnels through here, so that flush cannot be forgotten
     * at a new sync op. Acquire-side joins also land here but leave the
     * element untouched, and the cache *must* survive them (§5.2: the
     * hardware cache lives until the core's epoch changes) — acquiring
     * only adds order to our clock; another thread can become ordered
     * after our epoch, and thus overwrite a claimed slot unchecked,
     * only via a release of ours, which ticks. Within a rollover era
     * the element is monotone, so value equality implies it never
     * changed. Two events retract published epochs while leaving the
     * element equal and therefore flush explicitly: recovery rollback
     * (ThreadContext::rollbackWrites) and the rollover shadow reset
     * (CleanRuntime::performReset).
     */
    void
    refreshOwnEpoch()
    {
        const EpochValue element = vc.element(tid);
        if (element != ownEpoch) {
            ownEpoch = element;
            ownCache.flush(stats);
        }
    }

    /**
     * Debug-build check that the unsynchronized `stats` counters are
     * only ever bumped from one OS thread: StatSet/CheckerStats are
     * documented as per-thread-merged-after-the-run, and this pins the
     * contract at every checker entry. The owner is latched on the
     * first bump (states are constructed by the spawning thread but
     * first used by the child). Compiles to nothing with NDEBUG.
     */
#ifndef NDEBUG
    void
    assertStatsOwner()
    {
        const std::thread::id self = std::this_thread::get_id();
        std::thread::id owner =
            statsOwner_.load(std::memory_order_relaxed);
        if (owner == std::thread::id{} &&
            statsOwner_.compare_exchange_strong(owner, self,
                                                std::memory_order_relaxed))
            return;
        CLEAN_ASSERT(owner == self,
                     "CheckerStats bumped from two threads (tid %u)",
                     tid);
    }
    /**
     * Async-drain handoff (`--async-check`, DESIGN.md §16): the
     * dedicated checker thread legitimately bumps this thread's
     * counters while the owner blocks on the drain completion — it
     * borrows the single-writer latch for exactly that span and hands
     * back the previous owner afterwards, so the assert keeps firing
     * on genuinely unsynchronized cross-thread bumps.
     */
    std::thread::id
    exchangeStatsOwner(std::thread::id next)
    {
        return statsOwner_.exchange(next, std::memory_order_relaxed);
    }
#else
    void assertStatsOwner() {}
    std::thread::id exchangeStatsOwner(std::thread::id) { return {}; }
#endif

    ThreadId tid;
    VectorClock vc;
    EpochValue ownEpoch;
    CheckerStats stats;
    /** §5.2 software ownership cache; only the checker's hot path and
     *  the flush sites above touch it. */
    OwnershipCache ownCache;
    /** Index of the thread's current synchronization-free region,
     *  bumped at every sync op (acquireTurn); threaded into
     *  RaceException so reports can name the SFR a race fired in. */
    std::uint64_t sfrOrdinal = 0;
    /** Deferred read-check runs (§14); drained at SFR boundaries and
     *  on overflow by RaceChecker::drainBatch. */
    BatchBuffer batch;
    /** --overhead-budget sampling gate (§15); inert until the runtime
     *  (or a test harness) calls sample.configure() and the checker is
     *  built with CheckerConfig::sampling. */
    SampleGate sample;

#ifndef NDEBUG
  private:
    std::atomic<std::thread::id> statsOwner_{};
#endif
};

} // namespace clean

#endif // CLEAN_CORE_THREAD_STATE_H
