/**
 * @file
 * Cross-module integration & property tests:
 *
 *   - random lock-structured programs under full CLEAN are
 *     exception-free and bitwise deterministic (the §3.1 guarantees on
 *     arbitrary program shapes, not just the curated suite);
 *   - racy random programs either complete deterministically or always
 *     throw — never a mix — for a fixed input;
 *   - the hardware simulator is invariant under trace serialization;
 *   - CLEAN software exceptions and hardware race counting agree on
 *     recorded schedules.
 */

#include <gtest/gtest.h>

#include "core/clean.h"
#include "sim/machine.h"
#include "support/prng.h"
#include "workloads/registry.h"
#include "workloads/runner.h"

namespace clean
{
namespace
{

/** A random but fully deterministic lock-structured parallel program:
 *  each worker performs a seeded sequence of reads, writes, and
 *  critical sections over a small shared array. */
struct RandomProgramResult
{
    bool raceException = false;
    std::uint64_t stateHash = 0;
    std::vector<det::DetCount> detCounts;
};

RandomProgramResult
runRandomProgram(std::uint64_t seed, bool withRace, unsigned threads,
                 int opsPerThread)
{
    RuntimeConfig config;
    config.maxThreads = 16;
    config.heap.sharedBytes = std::size_t{64} << 20;
    config.heap.privateBytes = std::size_t{16} << 20;
    CleanRuntime rt(config);

    constexpr unsigned kWords = 32;
    constexpr unsigned kLocks = 4;
    auto *data = rt.heap().allocSharedArray<std::uint64_t>(kWords);
    std::deque<CleanMutex> locks;
    for (unsigned l = 0; l < kLocks; ++l)
        locks.emplace_back(rt);

    std::vector<ThreadHandle> handles;
    for (unsigned t = 0; t < threads; ++t) {
        handles.push_back(rt.spawn(
            rt.mainContext(), [&, t](ThreadContext &ctx) {
                Prng rng(seed ^ (t * 0x9e3779b97f4a7c15ULL));
                try {
                    for (int op = 0; op < opsPerThread; ++op) {
                        const unsigned word = rng.nextBelow(kWords);
                        const unsigned lock = word % kLocks;
                        const bool guarded =
                            !withRace || rng.nextBelow(100) < 95;
                        if (guarded)
                            locks[lock].lock(ctx);
                        const std::uint64_t v = ctx.read(&data[word]);
                        ctx.write(&data[word], v * 31 + t + 1);
                        if (guarded)
                            locks[lock].unlock(ctx);
                        ctx.detTick(1 + (t + op) % 3);
                    }
                } catch (const RaceException &) {
                    throw;
                }
            }));
    }
    for (auto &h : handles)
        rt.join(rt.mainContext(), h);

    RandomProgramResult result;
    result.raceException = rt.raceOccurred();
    if (!result.raceException) {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        for (unsigned i = 0; i < kWords; ++i)
            h = (h ^ rt.mainContext().read(&data[i])) * 0x100000001b3ULL;
        result.stateHash = h;
        result.detCounts = rt.finalDetCounts();
    }
    return result;
}

class RandomPrograms : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RandomPrograms, LockStructuredProgramsAreCleanAndDeterministic)
{
    const std::uint64_t seed = GetParam() * 1099511628211ULL + 3;
    const auto a = runRandomProgram(seed, false, 4, 150);
    const auto b = runRandomProgram(seed, false, 4, 150);
    EXPECT_FALSE(a.raceException);
    EXPECT_FALSE(b.raceException);
    EXPECT_EQ(a.stateHash, b.stateHash);
    EXPECT_EQ(a.detCounts, b.detCounts);
}

TEST_P(RandomPrograms, RacyProgramOutcomeIsReproducible)
{
    // With 5% unguarded critical sections the program may race; CLEAN
    // guarantees that for a fixed input the *outcome* is reproducible:
    // either every run throws or every run completes with the same
    // state (the paper's §3.1.2 testing/debugging argument).
    const std::uint64_t seed = GetParam() * 2654435761ULL + 17;
    const auto a = runRandomProgram(seed, true, 4, 120);
    const auto b = runRandomProgram(seed, true, 4, 120);
    EXPECT_EQ(a.raceException, b.raceException);
    if (!a.raceException) {
        EXPECT_EQ(a.stateHash, b.stateHash);
        EXPECT_EQ(a.detCounts, b.detCounts);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms, ::testing::Range(0u, 12u));

TEST(SimSerialization, ReplayInvariantUnderSaveLoad)
{
    wl::RunSpec spec;
    spec.workload = "ocean_cp";
    spec.backend = wl::BackendKind::Trace;
    spec.params.threads = 4;
    spec.params.scale = wl::Scale::Test;
    auto result = wl::runWorkload(spec);
    ASSERT_GT(result.trace.totalEvents(), 0u);

    const std::string path = ::testing::TempDir() + "sim_trace.bin";
    ASSERT_TRUE(wl::saveTrace(result.trace, path));
    wl::Trace loaded;
    ASSERT_TRUE(wl::loadTrace(path, loaded));

    sim::MachineConfig config;
    const auto a = sim::simulate(result.trace, config);
    const auto b = sim::simulate(loaded, config);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.memoryAccesses, b.memoryAccesses);
    EXPECT_EQ(a.hw.fastAccesses, b.hw.fastAccesses);
    EXPECT_EQ(a.hw.racesDetected, b.hw.racesDetected);
}

class SoftwareHardwareAgreement
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(SoftwareHardwareAgreement, RaceFreeTracesAreCleanInHardware)
{
    // Any schedule the race-free variant produces must also be
    // race-free under the hardware check (they implement the same
    // detection semantics).
    wl::RunSpec spec;
    spec.workload = GetParam();
    spec.backend = wl::BackendKind::Trace;
    spec.params.threads = 4;
    spec.params.scale = wl::Scale::Test;
    auto result = wl::runWorkload(spec);
    sim::MachineConfig config;
    const auto stats = sim::simulate(result.trace, config);
    EXPECT_EQ(stats.hw.racesDetected, 0u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Suite, SoftwareHardwareAgreement,
    ::testing::Values("fft", "barnes", "water_sp", "streamcluster",
                      "dedup", "radiosity", "x264", "canneal"),
    [](const auto &info) { return info.param; });

TEST(GranularityIntegration, WordModeAcceptsWordStructuredSuite)
{
    // blackscholes only shares whole doubles: word granularity is sound
    // for it and must not change the verdict.
    wl::RunSpec spec;
    spec.workload = "blackscholes";
    spec.backend = wl::BackendKind::Clean;
    spec.params.threads = 4;
    spec.params.scale = wl::Scale::Test;
    spec.runtime.granuleLog2 = 2;
    const auto result = wl::runWorkload(spec);
    EXPECT_FALSE(result.raceException) << result.raceMessage;
}

TEST(DetChunkIntegration, SuiteDeterministicUnderChunkedCounters)
{
    for (std::uint32_t chunk : {1u, 8u}) {
        wl::RunSpec spec;
        spec.workload = "radiosity"; // schedule-sensitive results
        spec.backend = wl::BackendKind::Clean;
        spec.params.threads = 4;
        spec.params.scale = wl::Scale::Test;
        spec.runtime.detChunk = chunk;
        const auto a = wl::runWorkload(spec);
        const auto b = wl::runWorkload(spec);
        ASSERT_FALSE(a.raceException);
        EXPECT_TRUE(a.fingerprint() == b.fingerprint())
            << "chunk=" << chunk;
    }
}

} // namespace
} // namespace clean
