file(REMOVE_RECURSE
  "CMakeFiles/clean_sim.dir/sim/cache.cc.o"
  "CMakeFiles/clean_sim.dir/sim/cache.cc.o.d"
  "CMakeFiles/clean_sim.dir/sim/clean_hw.cc.o"
  "CMakeFiles/clean_sim.dir/sim/clean_hw.cc.o.d"
  "CMakeFiles/clean_sim.dir/sim/machine.cc.o"
  "CMakeFiles/clean_sim.dir/sim/machine.cc.o.d"
  "CMakeFiles/clean_sim.dir/sim/memory_hierarchy.cc.o"
  "CMakeFiles/clean_sim.dir/sim/memory_hierarchy.cc.o.d"
  "libclean_sim.a"
  "libclean_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clean_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
