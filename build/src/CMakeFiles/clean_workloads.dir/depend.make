# Empty dependencies file for clean_workloads.
# This may be replaced when dependencies are built.
