/**
 * @file
 * swaptions — Monte-Carlo HJM swaption pricing (PARSEC).
 *
 * Each swaption is priced independently by simulating interest-rate
 * paths; the working set is per-thread path buffers (private shim
 * accesses), with only the swaption parameters read and one result
 * written per swaption. The lowest shared-access frequency in the
 * suite — swaptions sits at the cheap end of Figures 6 and 7.
 * Race-free.
 */

#include "workloads/suite/factories.h"
#include "workloads/suite/kernel_common.h"

namespace clean::wl::suite
{

namespace
{

struct Swaption
{
    double strike, maturity, vol, rate0;
    double price;
    double pad[3];
};

class Swaptions : public KernelBase
{
  public:
    Swaptions() : KernelBase("swaptions", "parsec", false) {}

    void
    run(Env &env, const WorkloadParams &p) override
    {
        const std::uint64_t nSwaptions = scaled(p.scale, 16, 32, 64);
        const std::uint64_t nPaths = scaled(p.scale, 64, 256, 1024);
        const std::uint64_t steps = 32;

        auto *swaptions = env.allocShared<Swaption>(nSwaptions);

        {
            Prng init(p.seed);
            for (std::uint64_t i = 0; i < nSwaptions; ++i) {
                swaptions[i].strike = 0.02 + init.nextDouble() * 0.06;
                swaptions[i].maturity = 1.0 + init.nextDouble() * 9.0;
                swaptions[i].vol = 0.05 + init.nextDouble() * 0.2;
                swaptions[i].rate0 = 0.01 + init.nextDouble() * 0.05;
                swaptions[i].price = 0.0;
            }
        }

        env.parallel(p.threads, [&](Worker &w) {
            const Slice s = sliceOf(nSwaptions, w.index(), w.count());
            auto *path = env.allocPrivate<double>(steps);
            std::uint64_t h = 0;
            for (std::uint64_t i = s.begin; i < s.end; ++i) {
                const double strike = w.read(&swaptions[i].strike);
                const double vol = w.read(&swaptions[i].vol);
                const double r0 = w.read(&swaptions[i].rate0);
                double payoffSum = 0.0;
                // Deterministic per-swaption path generator.
                Prng paths(p.seed ^ (i * 0x9e3779b97f4a7c15ULL));
                for (std::uint64_t path_i = 0; path_i < nPaths;
                     ++path_i) {
                    double r = r0;
                    for (std::uint64_t t = 0; t < steps; ++t) {
                        const double z =
                            paths.nextDouble() + paths.nextDouble() +
                            paths.nextDouble() - 1.5; // ~gaussian-ish
                        r = std::max(1e-5,
                                     r + 0.001 * (0.03 - r) +
                                         vol * 0.05 * z);
                        w.writePrivate(&path[t], r);
                        w.compute(10);
                    }
                    // Payoff: discounted swap value above strike.
                    double disc = 1.0, value = 0.0;
                    for (std::uint64_t t = 0; t < steps; ++t) {
                        const double rt = w.readPrivate(&path[t]);
                        disc /= (1.0 + rt / steps);
                        value += disc * (rt - strike) / steps;
                        w.compute(6);
                    }
                    payoffSum += std::max(0.0, value);
                }
                const double price =
                    payoffSum / static_cast<double>(nPaths);
                w.write(&swaptions[i].price, price);
                h = h * 31 + static_cast<std::uint64_t>(price * 1e6);
            }
            w.sink(h);
        });

        env.declareOutput(swaptions, nSwaptions * sizeof(Swaption));
    }
};

} // namespace

std::unique_ptr<Workload>
makeSwaptions()
{
    return std::make_unique<Swaptions>();
}

} // namespace clean::wl::suite
