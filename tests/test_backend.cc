/**
 * @file
 * Shim/backend tests: native counting, trace recording, detector
 * plumbing, output hashing.
 */

#include <gtest/gtest.h>

#include "detectors/fasttrack.h"
#include "workloads/backend.h"

namespace clean::wl
{
namespace
{

TEST(NativeEnv, CountsSharedAccesses)
{
    NativeEnv env(1);
    auto *x = env.allocShared<std::uint64_t>(16);
    env.parallel(2, [&](Worker &w) {
        for (int i = 0; i < 10; ++i) {
            w.write(&x[w.index() * 8], static_cast<std::uint64_t>(i));
            w.read(&x[w.index() * 8]);
        }
    });
    const auto totals = env.totals();
    EXPECT_EQ(totals.reads, 20u);
    EXPECT_EQ(totals.writes, 20u);
    EXPECT_EQ(totals.bytes, 40u * 8u);
}

TEST(NativeEnv, PrivateAccessesCountedSeparately)
{
    NativeEnv env(1);
    auto *p = env.allocPrivate<std::uint64_t>(4);
    std::uint64_t privCount = 0;
    env.parallel(1, [&](Worker &w) {
        w.writePrivate(&p[0], std::uint64_t{1});
        w.readPrivate(&p[0]);
        privCount = w.privateAccesses();
    });
    EXPECT_EQ(privCount, 2u);
    EXPECT_EQ(env.totals().reads, 0u);
}

TEST(NativeEnv, OutputHashCoversDeclaredRegionAndSinks)
{
    auto runOnce = [](std::uint64_t v) {
        NativeEnv env(1);
        auto *x = env.allocShared<std::uint64_t>(2);
        env.declareOutput(x, 2 * sizeof(std::uint64_t));
        env.parallel(1, [&](Worker &w) {
            w.write(&x[0], v);
            w.sink(v * 3);
        });
        return env.totals().outputHash;
    };
    EXPECT_EQ(runOnce(5), runOnce(5));
    EXPECT_NE(runOnce(5), runOnce(6));
}

TEST(NativeEnv, SinkHashesCombineByWorkerIndex)
{
    NativeEnv env(1);
    env.parallel(3, [&](Worker &w) { w.sink(w.index() * 100); });
    const auto h1 = env.totals().outputHash;
    NativeEnv env2(1);
    env2.parallel(3, [&](Worker &w) { w.sink(w.index() * 100); });
    EXPECT_EQ(h1, env2.totals().outputHash);
}

TEST(NativeEnv, MutexAndBarrierWork)
{
    NativeEnv env(1);
    auto *x = env.allocShared<int>(1);
    const unsigned m = env.createMutex();
    const unsigned b = env.createBarrier(4);
    env.parallel(4, [&](Worker &w) {
        for (int i = 0; i < 50; ++i) {
            w.lock(m);
            w.write(&x[0], w.read(&x[0]) + 1);
            w.unlock(m);
        }
        w.barrier(b);
        EXPECT_EQ(w.read(&x[0]), 200);
    });
}

TEST(NativeEnv, CondVarHandshake)
{
    NativeEnv env(1);
    auto *flag = env.allocShared<int>(1);
    const unsigned m = env.createMutex();
    const unsigned cv = env.createCond();
    env.parallel(2, [&](Worker &w) {
        if (w.index() == 0) {
            w.lock(m);
            while (w.read(&flag[0]) == 0)
                w.condWait(cv, m);
            w.unlock(m);
        } else {
            w.lock(m);
            w.write(&flag[0], 1);
            w.condBroadcast(cv);
            w.unlock(m);
        }
    });
    SUCCEED();
}

TEST(TraceEnv, RecordsAccessesWithSizesAndPrivacy)
{
    TraceEnv env(1);
    auto *x = env.allocShared<std::uint32_t>(4);
    auto *p = env.allocPrivate<std::uint32_t>(4);
    env.parallel(1, [&](Worker &w) {
        w.write(&x[0], 1u);
        w.read(&x[0]);
        w.writePrivate(&p[0], 2u);
        w.compute(17);
    });
    const Trace trace = env.takeTrace();
    ASSERT_EQ(trace.perThread.size(), 1u);
    const auto &events = trace.perThread[0];
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].kind, TraceEvent::Kind::Write);
    EXPECT_EQ(events[0].size, 4u);
    EXPECT_FALSE(events[0].isPrivate);
    EXPECT_EQ(events[1].kind, TraceEvent::Kind::Read);
    EXPECT_TRUE(events[2].isPrivate);
    EXPECT_EQ(events[3].kind, TraceEvent::Kind::Compute);
    EXPECT_EQ(events[3].addr, 17u);
}

TEST(TraceEnv, ComputeEventsCoalesce)
{
    TraceEnv env(1);
    env.parallel(1, [&](Worker &w) {
        w.compute(5);
        w.compute(7);
    });
    const Trace trace = env.takeTrace();
    ASSERT_EQ(trace.perThread[0].size(), 1u);
    EXPECT_EQ(trace.perThread[0][0].addr, 12u);
}

TEST(TraceEnv, SyncEventsCarryPerObjectSequence)
{
    TraceEnv env(1);
    auto *x = env.allocShared<int>(1);
    const unsigned m = env.createMutex();
    env.parallel(2, [&](Worker &w) {
        for (int i = 0; i < 5; ++i) {
            w.lock(m);
            w.write(&x[0], w.read(&x[0]) + 1);
            w.unlock(m);
        }
    });
    const Trace trace = env.takeTrace();
    ASSERT_EQ(trace.objects.size(), 1u);
    EXPECT_EQ(trace.objects[0].kind, TraceSyncObject::Kind::Mutex);
    EXPECT_EQ(trace.objects[0].eventCount, 20u);
    // Sequences are unique and alternate acquire/release per pairing.
    std::vector<bool> seen(20, false);
    for (const auto &thread : trace.perThread) {
        std::uint32_t lastSeq = 0;
        bool haveLast = false;
        for (const auto &e : thread) {
            if (e.kind != TraceEvent::Kind::Acquire &&
                e.kind != TraceEvent::Kind::Release) {
                continue;
            }
            ASSERT_LT(e.seq, 20u);
            EXPECT_FALSE(seen[e.seq]);
            seen[e.seq] = true;
            if (haveLast) {
                EXPECT_GT(e.seq, lastSeq); // per-thread monotone
            }
            lastSeq = e.seq;
            haveLast = true;
        }
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(TraceEnv, BarrierPartiesRecorded)
{
    TraceEnv env(1);
    const unsigned b = env.createBarrier(3);
    env.parallel(3, [&](Worker &w) {
        w.barrier(b);
        w.barrier(b);
    });
    const Trace trace = env.takeTrace();
    ASSERT_EQ(trace.objects.size(), 1u);
    EXPECT_EQ(trace.objects[0].kind, TraceSyncObject::Kind::Barrier);
    EXPECT_EQ(trace.objects[0].parties, 3u);
    EXPECT_EQ(trace.objects[0].eventCount, 6u);
}

TEST(TraceEnv, AddressBoundsTracked)
{
    TraceEnv env(1);
    auto *x = env.allocShared<std::uint8_t>(128);
    env.parallel(1, [&](Worker &w) {
        w.write(&x[0], std::uint8_t{1});
        w.write(&x[100], std::uint8_t{2});
    });
    const Trace trace = env.takeTrace();
    EXPECT_EQ(trace.maxAddr - trace.minAddr, 101u);
}

TEST(TraceSerialization, RoundTripsExactly)
{
    TraceEnv env(1);
    auto *x = env.allocShared<std::uint32_t>(64);
    const unsigned m = env.createMutex();
    const unsigned b = env.createBarrier(2);
    env.parallel(2, [&](Worker &w) {
        for (int i = 0; i < 20; ++i) {
            w.lock(m);
            w.write(&x[i % 64], static_cast<std::uint32_t>(i));
            w.unlock(m);
            w.compute(5);
        }
        w.barrier(b);
        w.read(&x[0]);
    });
    const Trace original = env.takeTrace();

    const std::string path = ::testing::TempDir() + "trace_rt.bin";
    ASSERT_TRUE(saveTrace(original, path));
    Trace loaded;
    ASSERT_TRUE(loadTrace(path, loaded));

    ASSERT_EQ(loaded.perThread.size(), original.perThread.size());
    EXPECT_EQ(loaded.minAddr, original.minAddr);
    EXPECT_EQ(loaded.maxAddr, original.maxAddr);
    ASSERT_EQ(loaded.objects.size(), original.objects.size());
    for (std::size_t o = 0; o < original.objects.size(); ++o) {
        EXPECT_EQ(loaded.objects[o].kind, original.objects[o].kind);
        EXPECT_EQ(loaded.objects[o].parties,
                  original.objects[o].parties);
        EXPECT_EQ(loaded.objects[o].eventCount,
                  original.objects[o].eventCount);
    }
    for (std::size_t t = 0; t < original.perThread.size(); ++t) {
        ASSERT_EQ(loaded.perThread[t].size(),
                  original.perThread[t].size());
        for (std::size_t i = 0; i < original.perThread[t].size(); ++i) {
            const auto &a = original.perThread[t][i];
            const auto &b2 = loaded.perThread[t][i];
            EXPECT_EQ(a.kind, b2.kind);
            EXPECT_EQ(a.addr, b2.addr);
            EXPECT_EQ(a.object, b2.object);
            EXPECT_EQ(a.seq, b2.seq);
            EXPECT_EQ(a.size, b2.size);
            EXPECT_EQ(a.isPrivate, b2.isPrivate);
        }
    }
}

TEST(TraceSerialization, LoadRejectsGarbage)
{
    const std::string path = ::testing::TempDir() + "trace_bad.bin";
    FILE *f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("not a trace", f);
    fclose(f);
    Trace out;
    EXPECT_FALSE(loadTrace(path, out));
    EXPECT_FALSE(loadTrace("/nonexistent/path/trace.bin", out));
}

TEST(DetectorEnv, ForwardsAccessesWithWorkerTids)
{
    detectors::FastTrackDetector detector(kDefaultEpochConfig, 4);
    DetectorEnv env(detector, 1);
    auto *x = env.allocShared<int>(1);
    env.parallel(2, [&](Worker &w) {
        // Both workers write unsynchronized: FastTrack must report.
        for (int i = 0; i < 100; ++i)
            w.write(&x[0], i);
    });
    EXPECT_GE(detector.reportCount(), 1u);
}

TEST(DetectorEnv, LockedSharingIsClean)
{
    detectors::FastTrackDetector detector(kDefaultEpochConfig, 4);
    DetectorEnv env(detector, 1);
    auto *x = env.allocShared<int>(1);
    const unsigned m = env.createMutex();
    env.parallel(2, [&](Worker &w) {
        for (int i = 0; i < 100; ++i) {
            w.lock(m);
            w.write(&x[0], w.read(&x[0]) + 1);
            w.unlock(m);
        }
    });
    EXPECT_EQ(detector.reportCount(), 0u);
}

} // namespace
} // namespace clean::wl
