
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_epoch.cc" "tests/CMakeFiles/test_core.dir/test_epoch.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_epoch.cc.o.d"
  "/root/repo/tests/test_race_check.cc" "tests/CMakeFiles/test_core.dir/test_race_check.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_race_check.cc.o.d"
  "/root/repo/tests/test_shadow.cc" "tests/CMakeFiles/test_core.dir/test_shadow.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_shadow.cc.o.d"
  "/root/repo/tests/test_shared_heap.cc" "tests/CMakeFiles/test_core.dir/test_shared_heap.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_shared_heap.cc.o.d"
  "/root/repo/tests/test_vector_clock.cc" "tests/CMakeFiles/test_core.dir/test_vector_clock.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/test_vector_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/clean_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_det.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/clean_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
